// Package persist implements binary snapshots of a database and its
// index catalog: a length-prefixed, checksummed format holding every
// table's documents as node records, plus the index definitions (index
// contents are rebuilt from data on load, like a REORG, so snapshots
// stay small and can never disagree with the data).
//
// Format (little-endian):
//
//	magic "XIXADB2\n"
//	uvarint tableCount
//	  table: string name, uvarint nextID, uvarint docCount
//	    doc: uvarint docID, uvarint nodeCount
//	      node: byte kind, varint parent(+1), string name, string value
//	uvarint indexDefCount
//	  def: string table, string pattern, byte type
//	uint32 CRC-32 (Castagnoli) of everything before it
//
// Children, levels, and subtree intervals are reconstructed from the
// parent links and document order on load.
//
// Version 2 added the per-table nextID and per-document docID fields so
// document identities survive a save/load cycle: version 1 re-inserted
// documents on load, which silently re-numbered every document after
// any deletion and invalidated external references to document IDs.
// Version 1 snapshots (magic "XIXADB1\n", no ID fields) still load,
// with IDs assigned by insertion order as before.
//
// Version 3 added a uvarint LSN immediately after the magic: a snapshot
// is now a checkpoint stamped with the write-ahead log position it
// reflects, so recovery (server.Recover) knows exactly which WAL tail
// to replay on top of it. Version 1 and 2 snapshots still load, with
// LSN 0. A checkpoint may carry a capture sidecar (SaveCaptureFile) so
// a restarted daemon's tuner warm-starts from the checkpointed
// workload instead of relearning it.
//
// Version 4 added a uvarint commit stamp (the MVCC watermark) right
// after the LSN: the storage layer's commit-stamp allocator survives a
// restart by advancing to it, so stamps stay contiguous across the
// whole log history and replay can order records by stamp. Versions
// 1-3 still load, with stamp 0.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"xixa/internal/storage"
	"xixa/internal/workload"
	"xixa/internal/xindex"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

var (
	magic    = []byte("XIXADB4\n")
	magicV3  = []byte("XIXADB3\n")
	magicV2  = []byte("XIXADB2\n")
	magicV1  = []byte("XIXADB1\n")
	magicCap = []byte("XIXACAP1")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type countingWriter struct {
	w   io.Writer
	sum hash.Hash32 // nil = no checksum (the WAL frames payloads with its own CRC)
	buf [binary.MaxVarintLen64]byte
}

func (cw *countingWriter) write(p []byte) error {
	if _, err := cw.w.Write(p); err != nil {
		return err
	}
	if cw.sum != nil {
		cw.sum.Write(p)
	}
	return nil
}

func (cw *countingWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(cw.buf[:], v)
	return cw.write(cw.buf[:n])
}

func (cw *countingWriter) varint(v int64) error {
	n := binary.PutVarint(cw.buf[:], v)
	return cw.write(cw.buf[:n])
}

func (cw *countingWriter) str(s string) error {
	if err := cw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	return cw.write([]byte(s))
}

// SaveDatabase writes a snapshot of db and the given index definitions
// with no WAL position (LSN 0) — the plain, non-durable snapshot path.
func SaveDatabase(w io.Writer, db *storage.Database, defs []xindex.Definition) error {
	return SaveCheckpoint(w, db, defs, 0, 0)
}

// SaveCheckpoint writes a snapshot stamped with the write-ahead log
// position and MVCC commit stamp (watermark) it reflects: recovery
// loads it, advances the stamp allocator to stamp, and replays only
// the WAL records past lsn.
func SaveCheckpoint(w io.Writer, db *storage.Database, defs []xindex.Definition, lsn, stamp uint64) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw, sum: crc32.New(crcTable)}
	if err := cw.write(magic); err != nil {
		return err
	}
	if err := cw.uvarint(lsn); err != nil {
		return err
	}
	if err := cw.uvarint(stamp); err != nil {
		return err
	}
	names := db.TableNames()
	if err := cw.uvarint(uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		tbl, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := cw.str(name); err != nil {
			return err
		}
		if err := cw.uvarint(uint64(tbl.NextID())); err != nil {
			return err
		}
		if err := cw.uvarint(uint64(tbl.DocCount())); err != nil {
			return err
		}
		var docErr error
		tbl.Scan(func(doc *xmltree.Document) bool {
			if docErr = cw.uvarint(uint64(doc.DocID)); docErr != nil {
				return false
			}
			docErr = writeDoc(cw, doc)
			return docErr == nil
		})
		if docErr != nil {
			return docErr
		}
	}
	if err := cw.uvarint(uint64(len(defs))); err != nil {
		return err
	}
	for _, def := range defs {
		if err := cw.str(def.Table); err != nil {
			return err
		}
		if err := cw.str(def.Pattern.String()); err != nil {
			return err
		}
		kind := byte(0)
		if def.Type == xpath.NumberVal {
			kind = 1
		}
		if err := cw.write([]byte{kind}); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.sum.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeDoc(cw *countingWriter, doc *xmltree.Document) error {
	if err := cw.uvarint(uint64(doc.Len())); err != nil {
		return err
	}
	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		if err := cw.write([]byte{byte(n.Kind)}); err != nil {
			return err
		}
		if err := cw.varint(int64(n.Parent)); err != nil {
			return err
		}
		if err := cw.str(n.Name); err != nil {
			return err
		}
		if err := cw.str(n.Value); err != nil {
			return err
		}
	}
	return nil
}

// byteScanner is what checkedReader needs from its source:
// bufio.Reader and bytes.Reader both qualify.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

type checkedReader struct {
	r   byteScanner
	sum hash.Hash32 // nil = no checksum (the WAL frames payloads with its own CRC)
}

func (cr *checkedReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err != nil {
		return 0, err
	}
	if cr.sum != nil {
		cr.sum.Write([]byte{b})
	}
	return b, nil
}

func (cr *checkedReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	if cr.sum != nil {
		cr.sum.Write(p)
	}
	return nil
}

func (cr *checkedReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(cr)
}

func (cr *checkedReader) varint() (int64, error) {
	return binary.ReadVarint(cr)
}

// maxStringLen bounds string fields to keep corrupted lengths from
// allocating unbounded memory.
const maxStringLen = 1 << 24

func (cr *checkedReader) str() (string, error) {
	n, err := cr.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("persist: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if err := cr.read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// LoadDatabase reads a snapshot, verifies its checksum, and rebuilds
// the database and index definitions, discarding the checkpoint LSN
// and stamp.
func LoadDatabase(r io.Reader) (*storage.Database, []xindex.Definition, error) {
	db, defs, _, _, err := LoadCheckpoint(r)
	return db, defs, err
}

// LoadCheckpoint reads a snapshot, verifies its checksum, and rebuilds
// the database and index definitions, additionally returning the WAL
// LSN and MVCC commit stamp the snapshot was stamped with (0 for
// pre-v3 / pre-v4 snapshots respectively).
func LoadCheckpoint(r io.Reader) (*storage.Database, []xindex.Definition, uint64, uint64, error) {
	cr := &checkedReader{r: bufio.NewReader(r), sum: crc32.New(crcTable)}
	head := make([]byte, len(magic))
	if err := cr.read(head); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("persist: reading magic: %w", err)
	}
	v4 := string(head) == string(magic)
	v3 := v4 || string(head) == string(magicV3)
	v2 := v3 || string(head) == string(magicV2)
	if !v2 && string(head) != string(magicV1) {
		return nil, nil, 0, 0, fmt.Errorf("persist: not a xixa snapshot (bad magic %q)", head)
	}
	var lsn, stamp uint64
	if v3 {
		var err error
		if lsn, err = cr.uvarint(); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	if v4 {
		var err error
		if stamp, err = cr.uvarint(); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	db := storage.NewDatabase()
	tableCount, err := cr.uvarint()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for t := uint64(0); t < tableCount; t++ {
		name, err := cr.str()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		tbl, err := db.CreateTable(name)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if v2 {
			nextID, err := cr.uvarint()
			if err != nil {
				return nil, nil, 0, 0, err
			}
			tbl.SetNextID(int64(nextID))
		}
		docCount, err := cr.uvarint()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		for d := uint64(0); d < docCount; d++ {
			if v2 {
				docID, err := cr.uvarint()
				if err != nil {
					return nil, nil, 0, 0, err
				}
				doc, err := readDoc(cr)
				if err != nil {
					return nil, nil, 0, 0, fmt.Errorf("persist: table %s doc %d: %w", name, d, err)
				}
				if err := tbl.InsertAt(doc, int64(docID)); err != nil {
					return nil, nil, 0, 0, fmt.Errorf("persist: table %s doc %d: %w", name, d, err)
				}
				continue
			}
			doc, err := readDoc(cr)
			if err != nil {
				return nil, nil, 0, 0, fmt.Errorf("persist: table %s doc %d: %w", name, d, err)
			}
			tbl.Insert(doc)
		}
	}
	defCount, err := cr.uvarint()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	var defs []xindex.Definition
	for i := uint64(0); i < defCount; i++ {
		table, err := cr.str()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		patText, err := cr.str()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		pattern, err := xpath.ParsePattern(patText)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("persist: index %d: %w", i, err)
		}
		var kindByte [1]byte
		if err := cr.read(kindByte[:]); err != nil {
			return nil, nil, 0, 0, err
		}
		kind := xpath.StringVal
		if kindByte[0] == 1 {
			kind = xpath.NumberVal
		}
		defs = append(defs, xindex.Definition{Table: table, Pattern: pattern, Type: kind})
	}
	wantSum := cr.sum.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("persist: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != wantSum {
		return nil, nil, 0, 0, fmt.Errorf("persist: checksum mismatch (snapshot corrupted)")
	}
	return db, defs, lsn, stamp, nil
}

func readDoc(cr *checkedReader) (*xmltree.Document, error) {
	nodeCount, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if nodeCount == 0 {
		return nil, fmt.Errorf("empty document")
	}
	if nodeCount > maxStringLen {
		return nil, fmt.Errorf("node count %d exceeds limit", nodeCount)
	}
	doc := &xmltree.Document{Nodes: make([]xmltree.Node, nodeCount)}
	for i := uint64(0); i < nodeCount; i++ {
		var kind [1]byte
		if err := cr.read(kind[:]); err != nil {
			return nil, err
		}
		if kind[0] > byte(xmltree.Text) {
			return nil, fmt.Errorf("bad node kind %d", kind[0])
		}
		parent, err := cr.varint()
		if err != nil {
			return nil, err
		}
		if parent >= int64(i) || parent < -1 {
			return nil, fmt.Errorf("node %d has invalid parent %d", i, parent)
		}
		name, err := cr.str()
		if err != nil {
			return nil, err
		}
		value, err := cr.str()
		if err != nil {
			return nil, err
		}
		doc.Nodes[i] = xmltree.Node{
			ID:     xmltree.NodeID(i),
			Kind:   xmltree.Kind(kind[0]),
			Name:   name,
			Value:  value,
			Parent: xmltree.NodeID(parent),
			EndID:  xmltree.NodeID(i),
		}
	}
	// Reconstruct children, levels, and subtree intervals from the
	// parent links: document order means a child always follows its
	// parent.
	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		if n.Parent < 0 {
			if i != 0 {
				return nil, fmt.Errorf("node %d is a second root", i)
			}
			n.Level = 1
			continue
		}
		p := &doc.Nodes[n.Parent]
		p.Children = append(p.Children, n.ID)
		n.Level = p.Level + 1
	}
	for i := len(doc.Nodes) - 1; i > 0; i-- {
		n := &doc.Nodes[i]
		p := &doc.Nodes[n.Parent]
		if n.EndID > p.EndID {
			p.EndID = n.EndID
		}
	}
	return doc, nil
}

// RebuildIndexes materializes the snapshot's persisted index catalog
// against the loaded database — the warm-start half of the format's
// "definitions only; rebuild on load" contract (index contents are
// reconstructed from data, like a REORG, so they can never disagree
// with the documents). The indexes come back in the order the
// definitions were saved; definitions whose table is missing fail.
func RebuildIndexes(db *storage.Database, defs []xindex.Definition) ([]*xindex.Index, error) {
	out := make([]*xindex.Index, 0, len(defs))
	for _, def := range defs {
		tbl, err := db.Table(def.Table)
		if err != nil {
			return nil, fmt.Errorf("persist: rebuilding %s: %w", def, err)
		}
		idx, err := xindex.Build(tbl, def)
		if err != nil {
			return nil, fmt.Errorf("persist: rebuilding %s: %w", def, err)
		}
		out = append(out, idx)
	}
	return out, nil
}

// writeFileAtomic writes via a temp file, fsyncs it, renames it over
// path, and fsyncs the parent directory — the full sequence required
// for the result to survive power loss. Without the file fsync a crash
// after the rename can expose an empty or partial file; without the
// directory fsync the rename itself may not be durable.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a just-renamed entry inside it is
// durable. Exported because the write-ahead log's file swaps need the
// identical sequence; power-loss-critical fsync logic should live
// once.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveFile writes a snapshot to path atomically (temp file + fsync +
// rename + directory fsync).
func SaveFile(path string, db *storage.Database, defs []xindex.Definition) error {
	return SaveCheckpointFile(path, db, defs, 0, 0)
}

// SaveCheckpointFile writes an LSN- and stamp-stamped snapshot to path
// atomically.
func SaveCheckpointFile(path string, db *storage.Database, defs []xindex.Definition, lsn, stamp uint64) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return SaveCheckpoint(w, db, defs, lsn, stamp)
	})
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*storage.Database, []xindex.Definition, error) {
	db, defs, _, _, err := LoadCheckpointFile(path)
	return db, defs, err
}

// LoadCheckpointFile reads an LSN- and stamp-stamped snapshot from
// path.
func LoadCheckpointFile(path string) (*storage.Database, []xindex.Definition, uint64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// EncodeDoc writes one document in the snapshot node encoding (uvarint
// node count, then kind/parent/name/value per node) — the payload
// format the write-ahead log reuses for its doc-insert records so the
// snapshot and the log can never disagree on what a document is. It
// runs on the per-mutation hot path (inside the change-feed callback,
// under the table lock), so it writes straight to w with no checksum
// and no buffering of its own — the WAL frames the payload with its
// own CRC.
func EncodeDoc(w io.Writer, doc *xmltree.Document) error {
	return writeDoc(&countingWriter{w: w}, doc)
}

// DecodeDoc reads one EncodeDoc-encoded document, reconstructing
// children, levels, and subtree intervals from the parent links.
// Readers that are not already byte-oriented are buffered, in which
// case the document must be the trailing field of whatever frame
// contains it.
func DecodeDoc(r io.Reader) (*xmltree.Document, error) {
	bs, ok := r.(byteScanner)
	if !ok {
		bs = bufio.NewReader(r)
	}
	return readDoc(&checkedReader{r: bs})
}

// SaveCapture writes a workload capture's persistent form: the sidecar
// a checkpoint carries so a restarted daemon's tuner warm-starts from
// the checkpointed workload. Format: magic "XIXACAP1", uvarint count,
// then per entry a raw statement string and a float64 weight, closed
// by the usual CRC-32C.
func SaveCapture(w io.Writer, states []workload.CaptureState) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw, sum: crc32.New(crcTable)}
	if err := cw.write(magicCap); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(len(states))); err != nil {
		return err
	}
	for _, s := range states {
		if err := cw.str(s.Raw); err != nil {
			return err
		}
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(s.Weight))
		if err := cw.write(bits[:]); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.sum.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCapture reads a SaveCapture stream, verifying its checksum.
func LoadCapture(r io.Reader) ([]workload.CaptureState, error) {
	cr := &checkedReader{r: bufio.NewReader(r), sum: crc32.New(crcTable)}
	head := make([]byte, len(magicCap))
	if err := cr.read(head); err != nil {
		return nil, fmt.Errorf("persist: reading capture magic: %w", err)
	}
	if string(head) != string(magicCap) {
		return nil, fmt.Errorf("persist: not a capture sidecar (bad magic %q)", head)
	}
	count, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxStringLen {
		return nil, fmt.Errorf("persist: capture count %d exceeds limit", count)
	}
	states := make([]workload.CaptureState, 0, count)
	for i := uint64(0); i < count; i++ {
		raw, err := cr.str()
		if err != nil {
			return nil, err
		}
		var bits [8]byte
		if err := cr.read(bits[:]); err != nil {
			return nil, err
		}
		states = append(states, workload.CaptureState{
			Raw:    raw,
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(bits[:])),
		})
	}
	wantSum := cr.sum.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("persist: reading capture checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != wantSum {
		return nil, fmt.Errorf("persist: capture checksum mismatch")
	}
	return states, nil
}

// SaveCaptureFile writes a capture sidecar to path atomically.
func SaveCaptureFile(path string, states []workload.CaptureState) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return SaveCapture(w, states)
	})
}

// LoadCaptureFile reads a capture sidecar from path.
func LoadCaptureFile(path string) ([]workload.CaptureState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCapture(f)
}
