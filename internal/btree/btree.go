// Package btree implements an in-memory B+-tree over byte-comparable
// keys with uint64 payloads. It backs the XML path-value indexes: keys
// are order-preserving encodings of typed node values and payloads are
// packed (document, node) references.
//
// The tree reports page-level statistics (leaf pages, levels, bytes)
// because the optimizer's cost model and the advisor's disk-budget
// accounting are defined in terms of on-disk index size, as in the
// paper's DB2 substrate.
package btree

import (
	"bytes"
	"fmt"
)

// DefaultOrder is the fan-out used when NewTree is called with order 0.
// 128-way nodes model 8 KiB pages with short keys.
const DefaultOrder = 128

// Entry is a single key/value pair stored in a leaf.
type Entry struct {
	Key []byte
	Val uint64
}

// Tree is a B+-tree. The zero value is not usable; call NewTree.
//
// Duplicate keys are allowed; entries are totally ordered by (Key, Val).
// Deletion is by exact (Key, Val) pair and uses leaf compaction: a leaf
// that becomes empty is unlinked, but non-empty leaves are not
// rebalanced. Searches remain correct because separator keys stay valid
// upper bounds; space overhead is bounded by the deleted fraction.
type Tree struct {
	order int
	root  *node
	size  int
	// keyBytes tracks the total size of stored keys for size accounting.
	keyBytes int64
}

type node struct {
	leaf bool
	// keys: leaf entry keys, or internal separators (len(children)-1).
	keys [][]byte
	// vals: leaf entry payloads, or internal separator payloads. With
	// duplicate keys allowed, separators must order by the full
	// (key, val) pair or entries sharing a key could become unreachable
	// after a split places them in different leaves.
	vals     []uint64
	children []*node // internal only
	next     *node   // leaf chain
}

// NewTree returns an empty tree with the given order (maximum number of
// children per internal node; maximum entries per leaf). Order 0 selects
// DefaultOrder. Orders below 3 are rejected.
func NewTree(order int) (*Tree, error) {
	if order == 0 {
		order = DefaultOrder
	}
	if order < 3 {
		return nil, fmt.Errorf("btree: order %d too small (minimum 3)", order)
	}
	return &Tree{order: order, root: &node{leaf: true}}, nil
}

// MustNewTree is NewTree that panics on error, for statically valid orders.
func MustNewTree(order int) *Tree {
	t, err := NewTree(order)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// cmp orders entries by (key, val).
func cmp(aKey []byte, aVal uint64, bKey []byte, bVal uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aVal < bVal:
		return -1
	case aVal > bVal:
		return 1
	default:
		return 0
	}
}

// leafInsertPos finds the first index in the leaf whose (key,val) is >=
// the probe.
func leafInsertPos(n *node, key []byte, val uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(n.keys[mid], n.vals[mid], key, val) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex finds the child to descend into for the probe pair.
func childIndex(n *node, key []byte, val uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		// Separator (keys[i], vals[i]) is a lower bound of children[i+1].
		if cmp(n.keys[mid], n.vals[mid], key, val) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds an entry. Duplicate (key, val) pairs are stored once; a
// second insert of the same pair is a no-op and returns false.
func (t *Tree) Insert(key []byte, val uint64) bool {
	k := make([]byte, len(key))
	copy(k, key)
	newChild, sepKey, sepVal, inserted := t.insert(t.root, k, val)
	if newChild != nil {
		t.root = &node{
			leaf:     false,
			keys:     [][]byte{sepKey},
			vals:     []uint64{sepVal},
			children: []*node{t.root, newChild},
		}
	}
	if inserted {
		t.size++
		t.keyBytes += int64(len(k))
	}
	return inserted
}

// insert descends, inserts, and propagates splits. Returns the new right
// sibling and its separator pair if the node split.
func (t *Tree) insert(n *node, key []byte, val uint64) (*node, []byte, uint64, bool) {
	if n.leaf {
		pos := leafInsertPos(n, key, val)
		if pos < len(n.keys) && cmp(n.keys[pos], n.vals[pos], key, val) == 0 {
			return nil, nil, 0, false // duplicate pair
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[pos+1:], n.vals[pos:])
		n.vals[pos] = val
		if len(n.keys) <= t.order {
			return nil, nil, 0, true
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &node{leaf: true}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		return right, right.keys[0], right.vals[0], true
	}
	ci := childIndex(n, key, val)
	newChild, sepKey, sepVal, inserted := t.insert(n.children[ci], key, val)
	if newChild == nil {
		return nil, nil, 0, inserted
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sepKey
	n.vals = append(n.vals, 0)
	copy(n.vals[ci+1:], n.vals[ci:])
	n.vals[ci] = sepVal
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.children) <= t.order {
		return nil, nil, 0, inserted
	}
	// Split internal node.
	midKey := len(n.keys) / 2
	upSepKey, upSepVal := n.keys[midKey], n.vals[midKey]
	right := &node{leaf: false}
	right.keys = append(right.keys, n.keys[midKey+1:]...)
	right.vals = append(right.vals, n.vals[midKey+1:]...)
	right.children = append(right.children, n.children[midKey+1:]...)
	n.keys = n.keys[:midKey:midKey]
	n.vals = n.vals[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return right, upSepKey, upSepVal, true
}

// Delete removes the exact (key, val) pair, reporting whether it was
// present.
func (t *Tree) Delete(key []byte, val uint64) bool {
	removed := t.remove(t.root, key, val)
	if removed {
		t.size--
		t.keyBytes -= int64(len(key))
	}
	// Collapse a root that lost all leaves.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	return removed
}

func (t *Tree) remove(n *node, key []byte, val uint64) bool {
	if n.leaf {
		pos := leafInsertPos(n, key, val)
		if pos >= len(n.keys) || cmp(n.keys[pos], n.vals[pos], key, val) != 0 {
			return false
		}
		copy(n.keys[pos:], n.keys[pos+1:])
		n.keys = n.keys[:len(n.keys)-1]
		copy(n.vals[pos:], n.vals[pos+1:])
		n.vals = n.vals[:len(n.vals)-1]
		return true
	}
	ci := childIndex(n, key, val)
	child := n.children[ci]
	if !t.remove(child, key, val) {
		return false
	}
	// Unlink an emptied child (leaf compaction).
	empty := (child.leaf && len(child.keys) == 0) || (!child.leaf && len(child.children) == 0)
	if empty {
		if child.leaf {
			t.unlinkLeaf(child)
		}
		copy(n.children[ci:], n.children[ci+1:])
		n.children = n.children[:len(n.children)-1]
		if len(n.keys) > 0 {
			ki := ci
			if ki >= len(n.keys) {
				ki = len(n.keys) - 1
			}
			copy(n.keys[ki:], n.keys[ki+1:])
			n.keys = n.keys[:len(n.keys)-1]
			copy(n.vals[ki:], n.vals[ki+1:])
			n.vals = n.vals[:len(n.vals)-1]
		}
	}
	return true
}

// unlinkLeaf removes the leaf from the leaf chain.
func (t *Tree) unlinkLeaf(target *node) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if n == target {
		return // head removal handled by parent pointer surgery
	}
	for n != nil && n.next != target {
		n = n.next
	}
	if n != nil {
		n.next = target.next
	}
}

// Get reports whether any entry has the exact key, and returns the
// values of all entries with that key in val order.
func (t *Tree) Get(key []byte) []uint64 {
	var out []uint64
	t.AscendRange(key, key, true, true, func(_ []byte, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// AscendRange visits entries with lo <= key <= hi (bounds included per
// the flags; a nil bound is unbounded) in (key, val) order. The visit
// function returns false to stop early. AscendRange reports the number
// of entries visited.
func (t *Tree) AscendRange(lo, hi []byte, loIncl, hiIncl bool, visit func(key []byte, val uint64) bool) int {
	n := t.root
	if lo != nil {
		for !n.leaf {
			n = n.children[childIndex(n, lo, 0)]
		}
	} else {
		for !n.leaf {
			n = n.children[0]
		}
	}
	visited := 0
	for ; n != nil; n = n.next {
		for i := range n.keys {
			k, v := n.keys[i], n.vals[i]
			if lo != nil {
				c := bytes.Compare(k, lo)
				if c < 0 || (c == 0 && !loIncl) {
					continue
				}
			}
			if hi != nil {
				c := bytes.Compare(k, hi)
				if c > 0 || (c == 0 && !hiIncl) {
					return visited
				}
			}
			visited++
			if !visit(k, v) {
				return visited
			}
		}
	}
	return visited
}

// Ascend visits all entries in order.
func (t *Tree) Ascend(visit func(key []byte, val uint64) bool) int {
	return t.AscendRange(nil, nil, true, true, visit)
}

// Levels returns the height of the tree (1 for a single leaf), matching
// the "number of index levels" statistic the optimizer cost model uses.
func (t *Tree) Levels() int {
	levels := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		levels++
	}
	return levels
}

// LeafPages returns the number of leaf nodes.
func (t *Tree) LeafPages() int {
	pages := 0
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		pages++
	}
	return pages
}

// SizeBytes estimates the stored size of the tree: key bytes plus
// per-entry and per-page overheads. The same formula is used by the
// statistics module to size virtual indexes, so real and virtual sizes
// are directly comparable.
func (t *Tree) SizeBytes() int64 {
	return EstimateSizeBytes(t.size, t.keyBytes, t.order)
}

// Per-entry and per-page constants shared with virtual-index sizing.
const (
	EntryOverheadBytes = 10 // payload + slot
	PageOverheadBytes  = 64
)

// EstimateSizeBytes computes the size model for a (possibly virtual)
// tree holding entries total key bytes across n entries at the given
// order. Exported so virtual indexes derive sizes from statistics with
// the identical formula real indexes use.
func EstimateSizeBytes(n int, keyBytes int64, order int) int64 {
	if order <= 0 {
		order = DefaultOrder
	}
	if n == 0 {
		return PageOverheadBytes
	}
	// Leaves are ~2/3 full on average after random splits.
	fill := (order*2 + 2) / 3
	leaves := (n + fill - 1) / fill
	// Internal pages form a geometric series; approximate with /order.
	internal := 0
	for level := leaves; level > 1; level = (level + order - 1) / order {
		internal += (level + order - 1) / order
	}
	return keyBytes + int64(n)*EntryOverheadBytes + int64(leaves+internal+1)*PageOverheadBytes
}

// EstimateLevels computes the expected number of levels for an index of
// n entries at the given order, for virtual-index statistics.
func EstimateLevels(n, order int) int {
	if order <= 0 {
		order = DefaultOrder
	}
	if n == 0 {
		return 1
	}
	fill := (order*2 + 2) / 3
	levels := 1
	pages := (n + fill - 1) / fill
	for pages > 1 {
		pages = (pages + order - 1) / order
		levels++
	}
	return levels
}
