package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(2); err == nil {
		t.Error("order 2 accepted")
	}
	tr, err := NewTree(0)
	if err != nil || tr == nil {
		t.Fatalf("NewTree(0): %v", err)
	}
	if tr.Len() != 0 || tr.Levels() != 1 || tr.LeafPages() != 1 {
		t.Errorf("empty tree stats: len=%d levels=%d pages=%d", tr.Len(), tr.Levels(), tr.LeafPages())
	}
}

func TestInsertAndGet(t *testing.T) {
	tr := MustNewTree(4)
	for i := 0; i < 100; i++ {
		if !tr.Insert(key(i), uint64(i)) {
			t.Fatalf("Insert(%d) reported duplicate", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		vals := tr.Get(key(i))
		if len(vals) != 1 || vals[0] != uint64(i) {
			t.Errorf("Get(%d) = %v", i, vals)
		}
	}
	if got := tr.Get([]byte("missing")); len(got) != 0 {
		t.Errorf("Get(missing) = %v", got)
	}
}

func TestInsertDuplicatePairs(t *testing.T) {
	tr := MustNewTree(4)
	if !tr.Insert([]byte("a"), 1) {
		t.Fatal("first insert failed")
	}
	if tr.Insert([]byte("a"), 1) {
		t.Error("duplicate (key,val) accepted")
	}
	if !tr.Insert([]byte("a"), 2) {
		t.Error("same key different val rejected")
	}
	if got := tr.Get([]byte("a")); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Get(a) = %v, want [1 2]", got)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := MustNewTree(4)
	for i := 0; i < 200; i++ {
		tr.Insert(key(i), uint64(i))
	}
	for i := 0; i < 200; i += 2 {
		if !tr.Delete(key(i), uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(key(0), 0) {
		t.Error("second delete of same entry succeeded")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 200; i++ {
		got := tr.Get(key(i))
		wantLen := i % 2
		if len(got) != wantLen {
			t.Errorf("Get(%d) = %v, want %d entries", i, got, wantLen)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := MustNewTree(3)
	for i := 0; i < 50; i++ {
		tr.Insert(key(i), uint64(i))
	}
	for i := 0; i < 50; i++ {
		if !tr.Delete(key(i), uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	// Tree must remain usable.
	tr.Insert([]byte("x"), 9)
	if got := tr.Get([]byte("x")); len(got) != 1 || got[0] != 9 {
		t.Errorf("Get(x) after reuse = %v", got)
	}
}

func TestAscendRange(t *testing.T) {
	tr := MustNewTree(4)
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), uint64(i))
	}
	collect := func(lo, hi []byte, loIncl, hiIncl bool) []uint64 {
		var out []uint64
		tr.AscendRange(lo, hi, loIncl, hiIncl, func(_ []byte, v uint64) bool {
			out = append(out, v)
			return true
		})
		return out
	}
	if got := collect(key(10), key(19), true, true); len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("[10,19] = %v", got)
	}
	if got := collect(key(10), key(19), false, false); len(got) != 8 || got[0] != 11 || got[7] != 18 {
		t.Errorf("(10,19) = %v", got)
	}
	if got := collect(nil, key(4), true, true); len(got) != 5 {
		t.Errorf("(-inf,4] = %v", got)
	}
	if got := collect(key(95), nil, true, true); len(got) != 5 {
		t.Errorf("[95,inf) = %v", got)
	}
	if got := collect(nil, nil, true, true); len(got) != 100 {
		t.Errorf("full scan = %d entries", len(got))
	}
	if got := collect(key(200), nil, true, true); len(got) != 0 {
		t.Errorf("beyond max = %v", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := MustNewTree(4)
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), uint64(i))
	}
	count := 0
	visited := tr.Ascend(func(_ []byte, _ uint64) bool {
		count++
		return count < 7
	})
	if count != 7 || visited != 7 {
		t.Errorf("early stop visited %d/%d, want 7", count, visited)
	}
}

func TestOrderedIteration(t *testing.T) {
	tr := MustNewTree(5)
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(500)
	for _, i := range perm {
		tr.Insert(key(i), uint64(i))
	}
	var prev []byte
	tr.Ascend(func(k []byte, _ uint64) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		return true
	})
}

func TestStatsGrowth(t *testing.T) {
	tr := MustNewTree(4)
	if tr.Levels() != 1 {
		t.Errorf("empty levels = %d", tr.Levels())
	}
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), uint64(i))
	}
	if tr.Levels() < 3 {
		t.Errorf("1000 entries at order 4: levels = %d, want >= 3", tr.Levels())
	}
	if tr.LeafPages() < 1000/4 {
		t.Errorf("LeafPages = %d, too few", tr.LeafPages())
	}
	if tr.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	// Size must shrink after deletions.
	before := tr.SizeBytes()
	for i := 0; i < 500; i++ {
		tr.Delete(key(i), uint64(i))
	}
	if tr.SizeBytes() >= before {
		t.Errorf("SizeBytes did not shrink: %d -> %d", before, tr.SizeBytes())
	}
}

func TestEstimateSizeMatchesRealScale(t *testing.T) {
	// The virtual-size estimate must be within 2x of a real tree's
	// reported size for identical contents (same formula, same inputs).
	tr := MustNewTree(0)
	var keyBytes int64
	n := 20000
	for i := 0; i < n; i++ {
		k := key(i)
		keyBytes += int64(len(k))
		tr.Insert(k, uint64(i))
	}
	real := tr.SizeBytes()
	est := EstimateSizeBytes(n, keyBytes, 0)
	if real <= 0 || est <= 0 {
		t.Fatal("sizes must be positive")
	}
	ratio := float64(real) / float64(est)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("estimate off by more than 2x: real=%d est=%d", real, est)
	}
	if lv := EstimateLevels(n, 0); lv < 2 || lv > tr.Levels()+1 {
		t.Errorf("EstimateLevels = %d, real = %d", lv, tr.Levels())
	}
}

// refEntry mirrors tree contents for the model-based property test.
type refEntry struct {
	key string
	val uint64
}

// TestPropertyModelConformance drives random insert/delete/range
// operations against a reference implementation.
func TestPropertyModelConformance(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := MustNewTree(3 + r.Intn(6))
		var ref []refEntry
		keys := []string{"a", "b", "bb", "c", "ca", "d", "e", "f"}
		for op := 0; op < 300; op++ {
			k := keys[r.Intn(len(keys))]
			v := uint64(r.Intn(5))
			switch r.Intn(3) {
			case 0, 1: // insert
				dup := false
				for _, e := range ref {
					if e.key == k && e.val == v {
						dup = true
						break
					}
				}
				got := tr.Insert([]byte(k), v)
				if got == dup {
					t.Logf("seed %d op %d: Insert(%q,%d) = %v, dup = %v", seed, op, k, v, got, dup)
					return false
				}
				if !dup {
					ref = append(ref, refEntry{k, v})
				}
			case 2: // delete
				present := false
				for i, e := range ref {
					if e.key == k && e.val == v {
						present = true
						ref = append(ref[:i], ref[i+1:]...)
						break
					}
				}
				if got := tr.Delete([]byte(k), v); got != present {
					t.Logf("seed %d op %d: Delete(%q,%d) = %v, want %v", seed, op, k, v, got, present)
					return false
				}
			}
			if tr.Len() != len(ref) {
				t.Logf("seed %d op %d: Len %d != ref %d", seed, op, tr.Len(), len(ref))
				return false
			}
		}
		// Final full-order comparison.
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].key != ref[j].key {
				return ref[i].key < ref[j].key
			}
			return ref[i].val < ref[j].val
		})
		var got []refEntry
		tr.Ascend(func(k []byte, v uint64) bool {
			got = append(got, refEntry{string(k), v})
			return true
		})
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		// Random range queries.
		for q := 0; q < 20; q++ {
			lo := keys[r.Intn(len(keys))]
			hi := keys[r.Intn(len(keys))]
			if lo > hi {
				lo, hi = hi, lo
			}
			want := 0
			for _, e := range ref {
				if e.key >= lo && e.key <= hi {
					want++
				}
			}
			gotN := tr.AscendRange([]byte(lo), []byte(hi), true, true, func(_ []byte, _ uint64) bool { return true })
			if gotN != want {
				t.Logf("seed %d: range [%q,%q] = %d, want %d", seed, lo, hi, gotN, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKeyAliasing(t *testing.T) {
	// The tree must copy keys: mutating the caller's buffer afterwards
	// must not corrupt the tree.
	tr := MustNewTree(4)
	buf := []byte("mutable")
	tr.Insert(buf, 1)
	buf[0] = 'X'
	if got := tr.Get([]byte("mutable")); len(got) != 1 {
		t.Error("tree affected by caller mutation of key buffer")
	}
}
