package xstats

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"

	"xixa/internal/xmltree"
)

// valueAcc is the mergeable accumulator of one rooted label path: exact
// multisets of the path's string and numeric values plus running
// scalars. Unlike the derived PathStat — which only keeps distinct
// counts and a histogram — the multiset form supports subtraction, so
// deletions maintain statistics exactly: removing a document's
// contribution leaves precisely the accumulator a fresh collection of
// the remaining documents would build.
type valueAcc struct {
	count int64 // node occurrences on this path
	bytes int64 // total string-value bytes
	// strs is the string-value multiset. Values are pointers so the hot
	// increment path (map lookup by []byte-backed key) never allocates;
	// a key string is only materialized the first time a distinct value
	// is seen.
	strs map[string]*int64
	nums map[float64]int64 // numeric-value multiset, NaN excluded
	// nan counts NaN-valued numeric occurrences separately: NaN cannot
	// key a map (NaN != NaN), and the streaming collector counts every
	// NaN occurrence as a fresh distinct value, which this reproduces.
	nan int64
}

// foldInto adds src's contribution (possibly negative) into dst.
func (src *valueAcc) foldInto(dst *valueAcc) {
	dst.count += src.count
	dst.bytes += src.bytes
	for s, p := range src.strs {
		if *p == 0 {
			continue
		}
		dp := dst.strs[s]
		if dp == nil {
			dp = new(int64)
			dst.strs[s] = dp
		}
		*dp += *p
		if *dp == 0 {
			delete(dst.strs, s)
		}
	}
	for v, c := range src.nums {
		if c == 0 {
			continue
		}
		if n := dst.nums[v] + c; n == 0 {
			delete(dst.nums, v)
		} else {
			dst.nums[v] = n
		}
	}
	dst.nan += src.nan
}

// Delta is a PathID-indexed accumulation of document insertions and
// removals against one table dictionary — the unit of incremental
// statistics maintenance. A Delta doubles as the retained mergeable
// store inside a TableStats built by Collect/FromDelta, which is what
// makes ApplyDelta exact: folding a delta into the store yields the
// same accumulators a fresh collection would.
type Delta struct {
	dict    *xmltree.PathDict
	docs    int64
	nodes   int64
	accs    []*valueAcc // dense by PathID; nil = untouched
	touched []xmltree.PathID

	// Per-document scratch, reused across documents (see Collect).
	textAt  []xmltree.NodeID
	textCnt []int32
	textBuf []byte
}

// NewDelta creates an empty delta over a table's path dictionary.
func NewDelta(dict *xmltree.PathDict) *Delta {
	return &Delta{dict: dict}
}

// Docs returns the delta's net document count.
func (d *Delta) Docs() int64 { return d.docs }

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return d.docs == 0 && d.nodes == 0 && len(d.touched) == 0
}

// Reset clears the delta for reuse, keeping its scratch buffers.
func (d *Delta) Reset() {
	d.docs, d.nodes = 0, 0
	for _, pid := range d.touched {
		d.accs[pid] = nil
	}
	d.touched = d.touched[:0]
}

// CollectDoc adds one document's statistics contribution.
func (d *Delta) CollectDoc(doc *xmltree.Document) { d.addDoc(doc, 1) }

// RemoveDoc subtracts one document's statistics contribution. The
// document must be in the state it was collected in (call before
// mutating or after fetching the pre-image).
func (d *Delta) RemoveDoc(doc *xmltree.Document) { d.addDoc(doc, -1) }

// Merge folds another delta over the same dictionary into this one.
func (d *Delta) Merge(other *Delta) error {
	if other.dict != d.dict {
		return fmt.Errorf("xstats: cannot merge deltas over different dictionaries")
	}
	d.docs += other.docs
	d.nodes += other.nodes
	for _, pid := range other.touched {
		other.accs[pid].foldInto(d.ensure(pid))
	}
	return nil
}

// Clone returns a deep copy of the delta: same dictionary, independent
// accumulators. Folding into either copy leaves the other untouched,
// which is what lets a shard hand its retained store across a merge
// boundary while its keeper keeps mutating the original.
func (d *Delta) Clone() *Delta {
	out := &Delta{dict: d.dict, docs: d.docs, nodes: d.nodes}
	out.accs = make([]*valueAcc, len(d.accs))
	out.touched = make([]xmltree.PathID, len(d.touched))
	copy(out.touched, d.touched)
	for _, pid := range d.touched {
		src := d.accs[pid]
		dst := &valueAcc{
			count: src.count,
			bytes: src.bytes,
			nan:   src.nan,
			strs:  make(map[string]*int64, len(src.strs)),
			nums:  make(map[float64]int64, len(src.nums)),
		}
		for s, p := range src.strs {
			v := *p
			dst.strs[s] = &v
		}
		for v, c := range src.nums {
			dst.nums[v] = c
		}
		out.accs[pid] = dst
	}
	return out
}

// Rebase translates the delta onto another path dictionary, re-interning
// each touched path's root-to-node label chain. Two tables holding
// disjoint shards of the same logical table intern paths in arrival
// order, so the same rooted path can carry different PathIDs on
// different shards; rebasing is what makes their statistics combinable.
// The receiver is left untouched; the result is always an independent
// copy (rebasing onto the delta's own dictionary degenerates to Clone).
func (d *Delta) Rebase(dict *xmltree.PathDict) *Delta {
	if dict == d.dict {
		return d.Clone()
	}
	out := NewDelta(dict)
	out.docs, out.nodes = d.docs, d.nodes
	for _, pid := range d.touched {
		np := xmltree.NoPath
		for _, label := range d.dict.Labels(pid) {
			np = dict.Intern(np, label)
		}
		d.accs[pid].foldInto(out.ensure(np))
	}
	return out
}

// ensure returns the accumulator of a path, creating and registering it
// on first touch.
func (d *Delta) ensure(pid xmltree.PathID) *valueAcc {
	if int(pid) >= len(d.accs) {
		n := d.dict.Len()
		if n <= int(pid) {
			n = int(pid) + 1
		}
		grown := make([]*valueAcc, n)
		copy(grown, d.accs)
		d.accs = grown
	}
	acc := d.accs[pid]
	if acc == nil {
		acc = &valueAcc{strs: make(map[string]*int64), nums: make(map[float64]int64)}
		d.accs[pid] = acc
		d.touched = append(d.touched, pid)
	}
	return acc
}

// parseNumericBytes is xmltree.ParseNumeric over a trimmed byte view;
// the string is only materialized for plausible numeric candidates
// (xmltree.NumericLead rejects the common non-numeric case first).
func parseNumericBytes(b []byte) (float64, bool) {
	if len(b) == 0 || !xmltree.NumericLead(b[0]) {
		return 0, false
	}
	return xmltree.ParseNumeric(string(b))
}

// addDoc runs the single-pass collection over one document with the
// given sign (+1 insert, -1 remove): element text is accumulated once
// from the contiguous (ID, EndID] subtree ranges, the numeric
// interpretation parses that same string, and per-path accumulators are
// indexed densely by the dictionary's PathIDs.
func (d *Delta) addDoc(doc *xmltree.Document, sign int64) {
	d.docs += sign
	d.nodes += sign * int64(doc.Len())
	if doc.Dict != d.dict || len(doc.PathIDs) != doc.Len() {
		// Defensive: Table.Insert interns on the way in, so this is
		// only reachable for documents placed by unusual means.
		doc.InternPaths(d.dict)
	}
	n := doc.Len()

	// textAt lists the IDs of text nodes in document order, textCnt[i]
	// counts text nodes with ID < i, so the text nodes inside a subtree
	// (id, end] are textAt[textCnt[id+1]:textCnt[end+1]] — element text
	// accumulates from these contiguous ranges without walking the
	// subtree. textBuf holds multi-text-node concatenations so interior
	// elements do not allocate a string per node.
	d.textAt = d.textAt[:0]
	if cap(d.textCnt) < n+1 {
		d.textCnt = make([]int32, n+1)
	} else {
		d.textCnt = d.textCnt[:n+1]
	}
	for i := 0; i < n; i++ {
		d.textCnt[i] = int32(len(d.textAt))
		if doc.Nodes[i].Kind == xmltree.Text {
			d.textAt = append(d.textAt, xmltree.NodeID(i))
		}
	}
	d.textCnt[n] = int32(len(d.textAt))

	for i := 0; i < n; i++ {
		node := &doc.Nodes[i]
		if node.Kind == xmltree.Text {
			continue
		}
		acc := d.ensure(doc.PathIDs[i])
		acc.count += sign

		// Value extraction is allocation-free: attribute and
		// single-text values are trimmed views of existing strings, and
		// multi-text (interior element) concatenations land in the
		// reused byte buffer — a new string is only materialized the
		// first time a distinct concatenated value is seen.
		var val string
		var valb []byte
		concat := false
		if node.Kind == xmltree.Attribute {
			val = strings.TrimSpace(node.Value)
		} else {
			span := d.textAt[d.textCnt[node.ID+1]:d.textCnt[node.EndID+1]]
			switch len(span) {
			case 0:
			case 1:
				val = strings.TrimSpace(doc.Nodes[span[0]].Value)
			default:
				d.textBuf = d.textBuf[:0]
				for _, tid := range span {
					d.textBuf = append(d.textBuf, doc.Nodes[tid].Value...)
				}
				valb = bytes.TrimSpace(d.textBuf)
				concat = true
			}
		}

		var f float64
		var ok bool
		if concat {
			acc.bytes += sign * int64(len(valb))
			p := acc.strs[string(valb)] // no-alloc lookup
			if p == nil {
				p = new(int64)
				acc.strs[string(valb)] = p
			}
			*p += sign
			f, ok = parseNumericBytes(valb)
		} else {
			acc.bytes += sign * int64(len(val))
			p := acc.strs[val]
			if p == nil {
				p = new(int64)
				acc.strs[val] = p
			}
			*p += sign
			f, ok = xmltree.ParseNumeric(val)
		}
		if ok {
			if math.IsNaN(f) {
				acc.nan += sign
			} else {
				acc.nums[f] += sign
			}
		}
	}
}

// buildPathStat derives the immutable PathStat of one path from its
// accumulator, pruning values whose occurrences cancelled to zero. It
// returns nil when the path no longer has any nodes. The derivation is
// order-independent, so it is bit-compatible with the streaming
// collector: min/max folds, distinct counts, and equi-width histogram
// buckets do not depend on the order values were seen in.
func buildPathStat(dict *xmltree.PathDict, pid xmltree.PathID, acc *valueAcc) *PathStat {
	for s, p := range acc.strs {
		if *p == 0 {
			delete(acc.strs, s)
		}
	}
	for v, c := range acc.nums {
		if c == 0 {
			delete(acc.nums, v)
		}
	}
	if acc.count <= 0 {
		return nil
	}
	ps := &PathStat{
		Labels:          dict.Labels(pid),
		PathID:          pid,
		Count:           acc.count,
		ValueBytes:      acc.bytes,
		DistinctStrings: int64(len(acc.strs)),
	}
	numeric := acc.nan
	for _, c := range acc.nums {
		numeric += c
	}
	if numeric > 0 {
		ps.NumericCount = numeric
		ps.DistinctNums = int64(len(acc.nums)) + acc.nan
		if acc.nan > 0 {
			// math.Min/Max propagate NaN, so any NaN occurrence makes
			// the streaming fold NaN regardless of order.
			ps.Min, ps.Max = math.NaN(), math.NaN()
		} else {
			first := true
			for v := range acc.nums {
				if first {
					ps.Min, ps.Max = v, v
					first = false
				} else {
					ps.Min = math.Min(ps.Min, v)
					ps.Max = math.Max(ps.Max, v)
				}
			}
		}
		h := &Histogram{Min: ps.Min, Max: ps.Max, Buckets: make([]int64, histogramBuckets)}
		for v, c := range acc.nums {
			h.Buckets[h.bucketOf(v)] += c
			h.Total += c
		}
		if acc.nan > 0 {
			h.Buckets[h.bucketOf(math.NaN())] += acc.nan
			h.Total += acc.nan
		}
		ps.Hist = h
	}
	return ps
}

// FromDelta materializes a TableStats snapshot from a delta describing
// an entire table, taking ownership of the delta as the snapshot's
// retained mergeable store (later ApplyDelta calls fold into it).
func FromDelta(table string, version int64, d *Delta) *TableStats {
	ts := &TableStats{
		Table:        table,
		Version:      version,
		DocCount:     d.docs,
		TotalNodes:   d.nodes,
		Paths:        make(map[string]*PathStat),
		dict:         d.dict,
		acc:          d,
		patternCache: make(map[string]PatternStats),
		matchedCache: make(map[string][]*PathStat),
	}
	ts.byID = make([]*PathStat, len(d.accs))
	ts.List = make([]*PathStat, 0, len(d.touched))
	for _, pid := range d.touched {
		ps := buildPathStat(d.dict, pid, d.accs[pid])
		if ps == nil {
			continue
		}
		ts.byID[pid] = ps
		ts.Paths[ps.Path()] = ps
		ts.List = append(ts.List, ps)
	}
	sort.Slice(ts.List, func(i, j int) bool { return ts.List[i].Path() < ts.List[j].Path() })
	return ts
}

// ApplyDelta folds a delta of document insertions/removals into the
// statistics' retained accumulator store and returns a fresh snapshot
// at the given table version. Only paths the delta touches are
// recomputed; every other PathStat is shared with the old snapshot, so
// the work is proportional to the delta (plus a sort of the path list),
// never to the table.
//
// The receiver must be the newest snapshot built over its store: older
// snapshots stay valid for concurrent readers but must not apply
// further deltas. The delta is left unchanged; callers may Reset and
// reuse it. Statistics collected without a mergeable store (the
// reference collector) report an error.
func (ts *TableStats) ApplyDelta(d *Delta, version int64) (*TableStats, error) {
	if ts.acc == nil {
		return nil, fmt.Errorf("xstats: statistics for %q were not collected in mergeable form", ts.Table)
	}
	if d.dict != ts.dict {
		return nil, fmt.Errorf("xstats: delta dictionary does not match statistics for %q", ts.Table)
	}
	if d == ts.acc {
		return nil, fmt.Errorf("xstats: cannot apply statistics' own store onto itself")
	}
	store := ts.acc
	store.docs += d.docs
	store.nodes += d.nodes
	for _, pid := range d.touched {
		d.accs[pid].foldInto(store.ensure(pid))
	}

	out := &TableStats{
		Table:        ts.Table,
		Version:      version,
		DocCount:     store.docs,
		TotalNodes:   store.nodes,
		dict:         ts.dict,
		acc:          store,
		patternCache: make(map[string]PatternStats),
		matchedCache: make(map[string][]*PathStat),
	}
	out.byID = make([]*PathStat, len(store.accs))
	copy(out.byID, ts.byID)
	for _, pid := range d.touched {
		out.byID[pid] = buildPathStat(ts.dict, pid, store.accs[pid])
	}
	out.Paths = make(map[string]*PathStat, len(ts.Paths))
	out.List = make([]*PathStat, 0, len(ts.List))
	for _, ps := range out.byID {
		if ps == nil {
			continue
		}
		out.Paths[ps.Path()] = ps
		out.List = append(out.List, ps)
	}
	sort.Slice(out.List, func(i, j int) bool { return out.List[i].Path() < out.List[j].Path() })
	return out, nil
}

// Merge folds another mergeable TableStats into this one and returns
// the combined snapshot at the given version — the combinator for
// collecting disjoint document subsets separately (e.g. in parallel, or
// one per shard) and unifying them. Statistics over a different path
// dictionary are rebased onto the receiver's first, so per-shard tables
// — each of which interns paths in its own arrival order — merge by
// rooted label path, not by raw PathID. The other statistics remain
// readable; the receiver follows the same newest-snapshot discipline as
// ApplyDelta.
func (ts *TableStats) Merge(other *TableStats, version int64) (*TableStats, error) {
	if other.acc == nil {
		return nil, fmt.Errorf("xstats: statistics for %q were not collected in mergeable form", other.Table)
	}
	src := other.acc
	if ts.acc != nil && src.dict != ts.dict {
		src = src.Rebase(ts.dict)
	}
	return ts.ApplyDelta(src, version)
}

// Clone returns a snapshot whose mergeable store is independent of the
// receiver's, safe to Merge into another synopsis while the original's
// owner (e.g. a keeper) keeps folding deltas into it. Statistics
// without a store are immutable already and are returned as-is. Callers
// holding keeper-built snapshots should clone through Keeper.CloneStats
// instead, which serializes against the keeper's own folds.
func (ts *TableStats) Clone() *TableStats {
	if ts.acc == nil {
		return ts
	}
	return FromDelta(ts.Table, ts.Version, ts.acc.Clone())
}
