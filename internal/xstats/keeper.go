package xstats

import (
	"sync"
	"sync/atomic"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
)

// Keeper maintains one table's statistics incrementally: it subscribes
// to the table's change feed, accumulates insertions/removals into a
// pending Delta, and folds the delta into the current TableStats
// snapshot on demand. After a K-document change batch, refreshing costs
// O(K · doc size) — never a full table re-pass — and a snapshot at
// table version V is bit-identical to a fresh Collect at version V
// (the xstats golden tests assert this).
//
// Snapshots returned by Stats are immutable and safe to share with
// concurrent readers; the keeper alone mutates the underlying store.
//
// Stats sits on the optimizer's hot path (every Evaluate Indexes call
// under a live optimizer reads it), so between mutations it is a
// lock-free fast path: the current snapshot and observed version are
// published atomically, and the mutex is only taken to fold pending
// changes in after the version moved.
type Keeper struct {
	table *storage.Table

	version atomic.Int64               // table version covered by snap ⊕ pending
	snap    atomic.Pointer[TableStats] // latest built snapshot
	mu      sync.Mutex                 // guards pending and snapshot rebuilds
	pending *Delta
}

// NewKeeper builds the initial statistics for the table and subscribes
// to its change feed. Registration and the initial scan are atomic with
// respect to table mutations, so no change is missed or double-counted.
func NewKeeper(t *storage.Table) *Keeper {
	k := &Keeper{table: t}
	k.mu.Lock()
	defer k.mu.Unlock()
	d := NewDelta(t.PathDict())
	version, _ := t.SubscribeScan(k.onChange, func(doc *xmltree.Document) {
		d.CollectDoc(doc)
	})
	k.version.Store(version)
	k.snap.Store(FromDelta(t.Name, version, d))
	k.pending = NewDelta(t.PathDict())
	return k
}

// onChange is the table's change listener; it runs under the table lock
// and must not call back into the table.
func (k *Keeper) onChange(c storage.Change) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch c.Kind {
	case storage.DocInserted:
		k.pending.CollectDoc(c.Doc)
	case storage.DocRemoved:
		k.pending.RemoveDoc(c.Doc)
	}
	k.version.Store(c.Version)
}

// Stats returns the current statistics snapshot, folding any pending
// changes in first. Work is proportional to the changes since the last
// call, never to the table size; when nothing changed it is two atomic
// loads.
func (k *Keeper) Stats() *TableStats {
	if snap := k.snap.Load(); snap.Version == k.version.Load() {
		// A concurrent rebuild may publish a newer snapshot between the
		// two loads; the version recheck only ever sends that case down
		// the locked path, never returns a stale snapshot as current.
		return snap
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.statsLocked()
}

func (k *Keeper) statsLocked() *TableStats {
	version := k.version.Load()
	snap := k.snap.Load()
	if snap.Version != version {
		ns, err := snap.ApplyDelta(k.pending, version)
		if err != nil {
			// Unreachable: keeper-built snapshots always carry a
			// mergeable store over the table's own dictionary. A full
			// re-collect here could deadlock against a mutator waiting
			// in onChange, so treat it as the invariant violation it is.
			panic("xstats: keeper snapshot lost its mergeable store: " + err.Error())
		}
		k.snap.Store(ns)
		k.pending.Reset()
		snap = ns
	}
	return snap
}

// CloneStats returns a deep copy of the current statistics with an
// independent mergeable store. Snapshots returned by Stats share the
// keeper's retained store, which the keeper mutates on every later
// fold — safe for readers, but not for TableStats.Merge, which reads
// the store's accumulators outside the keeper's lock. Cross-table (and
// cross-shard) merges must start from CloneStats; the copy is made
// under the keeper's mutex, so it is a consistent cut even while the
// table keeps mutating.
func (k *Keeper) CloneStats() *TableStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	snap := k.statsLocked()
	return FromDelta(snap.Table, snap.Version, snap.acc.Clone())
}

// Version returns the table version the keeper has observed (which the
// next Stats call will cover).
func (k *Keeper) Version() int64 { return k.version.Load() }

// KeeperSet lazily maintains one Keeper per table of a database. It
// implements the optimizer's StatsSource, making every statistics read
// version-aware: after any table mutation the next read reflects it.
type KeeperSet struct {
	db *storage.Database

	mu      sync.RWMutex
	keepers map[string]*Keeper
}

// NewKeeperSet creates an empty keeper set over a database. Keepers are
// created on first use per table (paying one initial scan each).
func NewKeeperSet(db *storage.Database) *KeeperSet {
	return &KeeperSet{db: db, keepers: make(map[string]*Keeper)}
}

// Keeper returns the table's keeper, creating and subscribing it on
// first use. The steady state is a read-locked map hit, so concurrent
// optimizer pipelines do not serialize here.
func (ks *KeeperSet) Keeper(table string) (*Keeper, error) {
	ks.mu.RLock()
	k, ok := ks.keepers[table]
	ks.mu.RUnlock()
	if ok {
		return k, nil
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if k, ok := ks.keepers[table]; ok {
		return k, nil
	}
	t, err := ks.db.Table(table)
	if err != nil {
		return nil, err
	}
	k = NewKeeper(t)
	ks.keepers[table] = k
	return k, nil
}

// TableStats returns the table's current statistics snapshot (the
// StatsSource contract).
func (ks *KeeperSet) TableStats(table string) (*TableStats, error) {
	k, err := ks.Keeper(table)
	if err != nil {
		return nil, err
	}
	return k.Stats(), nil
}

// CloneTableStats returns an independently-owned copy of the table's
// statistics, safe to Merge across dictionaries while the keeper keeps
// maintaining the original (see Keeper.CloneStats).
func (ks *KeeperSet) CloneTableStats(table string) (*TableStats, error) {
	k, err := ks.Keeper(table)
	if err != nil {
		return nil, err
	}
	return k.CloneStats(), nil
}
