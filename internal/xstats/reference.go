package xstats

import (
	"math"
	"sort"
	"strings"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
)

// CollectReference is the original recursive statistics collector kept
// as an executable specification: it walks every subtree per node
// (re-extracting text for the numeric interpretation) and keys paths by
// rendered strings. The production Collect is a single-pass collector
// over the flat node slice keyed by interned PathIDs; the golden
// equivalence tests assert both produce identical TableStats. Do not
// use this on hot paths.
func CollectReference(t *storage.Table) *TableStats {
	ts := &TableStats{
		Table:        t.Name,
		Version:      t.Version(),
		Paths:        make(map[string]*PathStat),
		patternCache: make(map[string]PatternStats),
	}
	distinctStr := make(map[string]map[string]struct{})
	distinctNum := make(map[string]map[float64]struct{})
	numSamples := make(map[string][]float64)

	t.Scan(func(doc *xmltree.Document) bool {
		ts.DocCount++
		ts.TotalNodes += int64(doc.Len())
		var labels []string
		var walk func(id xmltree.NodeID)
		walk = func(id xmltree.NodeID) {
			n := doc.Node(id)
			label := n.Name
			if n.Kind == xmltree.Attribute {
				label = "@" + label
			}
			labels = append(labels, label)
			key := "/" + strings.Join(labels, "/")
			ps := ts.Paths[key]
			if ps == nil {
				ps = &PathStat{Labels: append([]string(nil), labels...), PathID: xmltree.NoPath}
				ts.Paths[key] = ps
				distinctStr[key] = make(map[string]struct{})
				distinctNum[key] = make(map[float64]struct{})
			}
			ps.Count++
			val := strings.TrimSpace(doc.TextOf(id))
			ps.ValueBytes += int64(len(val))
			if _, seen := distinctStr[key][val]; !seen {
				distinctStr[key][val] = struct{}{}
				ps.DistinctStrings++
			}
			if f, ok := doc.NumericValue(id); ok {
				if ps.NumericCount == 0 {
					ps.Min, ps.Max = f, f
				} else {
					ps.Min = math.Min(ps.Min, f)
					ps.Max = math.Max(ps.Max, f)
				}
				ps.NumericCount++
				numSamples[key] = append(numSamples[key], f)
				if _, seen := distinctNum[key][f]; !seen {
					distinctNum[key][f] = struct{}{}
					ps.DistinctNums++
				}
			}
			for _, c := range n.Children {
				if doc.Node(c).Kind != xmltree.Text {
					walk(c)
				}
			}
			labels = labels[:len(labels)-1]
		}
		if doc.Root() != nil {
			walk(doc.Root().ID)
		}
		return true
	})

	ts.List = make([]*PathStat, 0, len(ts.Paths))
	for key, ps := range ts.Paths {
		if samples := numSamples[key]; len(samples) > 0 {
			ps.Hist = newHistogram(ps.Min, ps.Max, samples)
		}
		ts.List = append(ts.List, ps)
	}
	sort.Slice(ts.List, func(i, j int) bool { return ts.List[i].Path() < ts.List[j].Path() })
	return ts
}
