package xstats

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
)

// eqFloat compares floats treating NaN as equal to NaN (bit-compat
// tests must not fail on NaN != NaN).
func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func eqHist(a, b *Histogram) bool {
	if a == nil || b == nil {
		return a == b
	}
	return eqFloat(a.Min, b.Min) && eqFloat(a.Max, b.Max) &&
		a.Total == b.Total && reflect.DeepEqual(a.Buckets, b.Buckets)
}

// requireStatsEqual asserts two TableStats carry identical synopses:
// same paths in the same order with identical counters, bounds, and
// histograms.
func requireStatsEqual(t *testing.T, label string, got, want *TableStats) {
	t.Helper()
	if got.DocCount != want.DocCount || got.TotalNodes != want.TotalNodes {
		t.Fatalf("%s: doc/node counts = (%d,%d), want (%d,%d)",
			label, got.DocCount, got.TotalNodes, want.DocCount, want.TotalNodes)
	}
	if got.Version != want.Version {
		t.Fatalf("%s: version = %d, want %d", label, got.Version, want.Version)
	}
	if len(got.List) != len(want.List) {
		gotPaths := make([]string, len(got.List))
		for i, ps := range got.List {
			gotPaths[i] = ps.Path()
		}
		t.Fatalf("%s: %d paths, want %d (got %v)", label, len(got.List), len(want.List), gotPaths)
	}
	for i, g := range got.List {
		w := want.List[i]
		if g.Path() != w.Path() || g.PathID != w.PathID {
			t.Fatalf("%s: List[%d] = %q (id %d), want %q (id %d)",
				label, i, g.Path(), g.PathID, w.Path(), w.PathID)
		}
		if g.Count != w.Count || g.DistinctStrings != w.DistinctStrings ||
			g.ValueBytes != w.ValueBytes || g.NumericCount != w.NumericCount ||
			g.DistinctNums != w.DistinctNums {
			t.Errorf("%s %s: counters (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
				label, g.Path(),
				g.Count, g.DistinctStrings, g.ValueBytes, g.NumericCount, g.DistinctNums,
				w.Count, w.DistinctStrings, w.ValueBytes, w.NumericCount, w.DistinctNums)
		}
		if !eqFloat(g.Min, w.Min) || !eqFloat(g.Max, w.Max) {
			t.Errorf("%s %s: bounds (%v,%v), want (%v,%v)", label, g.Path(), g.Min, g.Max, w.Min, w.Max)
		}
		if !eqHist(g.Hist, w.Hist) {
			t.Errorf("%s %s: histogram %+v, want %+v", label, g.Path(), g.Hist, w.Hist)
		}
		if ps, ok := got.Paths[g.Path()]; !ok || ps != g {
			t.Errorf("%s %s: Paths map does not point at List entry", label, g.Path())
		}
		if got.ByPathID(g.PathID) != g {
			t.Errorf("%s %s: ByPathID does not point at List entry", label, g.Path())
		}
	}
}

// TestKeeperMatchesCollectUnderStream is the incremental-maintenance
// golden test: a stream of inserts, deletes, and in-place updates
// maintained through a Keeper must yield, at every checkpoint, a
// TableStats bit-identical to a fresh full Collect of the table.
func TestKeeperMatchesCollectUnderStream(t *testing.T) {
	tbl := storage.NewTable("SECURITY")
	k := NewKeeper(tbl)

	var ids []int64
	insert := func(i int) {
		d := xmltree.NewBuilder().
			Begin("Security").
			Attr("id", fmt.Sprintf("%d", 100000+i)).
			Leaf("Symbol", fmt.Sprintf("S%04d", i)).
			LeafFloat("Yield", float64(i%13)+float64(i%7)/10).
			Begin("SecInfo").Begin("StockInformation").
			Leaf("Sector", []string{"Energy", "Tech", "Finance"}[i%3]).
			End().End().
			End().Document()
		ids = append(ids, tbl.Insert(d))
	}
	checkpoint := func(step string) {
		t.Helper()
		requireStatsEqual(t, step, k.Stats(), Collect(tbl))
	}

	for i := 0; i < 60; i++ {
		insert(i)
	}
	checkpoint("after inserts")

	// Delete every third document (including the current min/max Yield
	// holders eventually), forcing bound and histogram recomputation.
	for i := 0; i < len(ids); i += 3 {
		if !tbl.Delete(ids[i]) {
			t.Fatalf("delete %d failed", ids[i])
		}
	}
	checkpoint("after deletes")

	// In-place updates through Table.Update: rewrite Yield leaves.
	updated := 0
	for i := 1; i < len(ids); i += 3 {
		id := ids[i]
		ok := tbl.Update(id, func(d *xmltree.Document) {
			for j := range d.Nodes {
				n := &d.Nodes[j]
				if n.Kind == xmltree.Text && d.Nodes[n.Parent].Name == "Yield" {
					n.Value = fmt.Sprintf("%.2f", 99.5+float64(i))
				}
			}
		})
		if !ok {
			t.Fatalf("update %d failed", id)
		}
		updated++
	}
	if updated == 0 {
		t.Fatal("no documents updated")
	}
	checkpoint("after updates")

	// Interleaved churn: insert new shapes (new paths), delete more.
	for i := 100; i < 120; i++ {
		d := xmltree.NewBuilder().
			Begin("Security").
			Leaf("Symbol", fmt.Sprintf("S%04d", i)).
			Begin("Price").LeafFloat("Open", float64(i)).LeafFloat("Close", float64(i)+0.5).End().
			End().Document()
		ids = append(ids, tbl.Insert(d))
	}
	for i := 2; i < 60; i += 3 {
		tbl.Delete(ids[i])
	}
	checkpoint("after churn")
}

// TestDeltaCancellation asserts that deleting everything ever inserted
// returns the statistics to their empty state: no paths survive, even
// transiently-touched ones.
func TestDeltaCancellation(t *testing.T) {
	tbl := storage.NewTable("T")
	k := NewKeeper(tbl)
	var ids []int64
	for i := 0; i < 10; i++ {
		d := xmltree.NewBuilder().
			Begin("Doc").Leaf("V", fmt.Sprintf("%d", i)).End().Document()
		ids = append(ids, tbl.Insert(d))
	}
	for _, id := range ids {
		tbl.Delete(id)
	}
	st := k.Stats()
	requireStatsEqual(t, "emptied", st, Collect(tbl))
	if len(st.List) != 0 || st.DocCount != 0 || st.TotalNodes != 0 {
		t.Fatalf("emptied table still has stats: %d paths, %d docs, %d nodes",
			len(st.List), st.DocCount, st.TotalNodes)
	}
}

// TestDeltaEdgeValues covers the value extraction corners through the
// incremental path: NaN and infinite numerics, empty elements,
// multi-text concatenation, and attribute values.
func TestDeltaEdgeValues(t *testing.T) {
	tbl := storage.NewTable("T")
	k := NewKeeper(tbl)
	mk := func(val string) *xmltree.Document {
		return xmltree.NewBuilder().
			Begin("Doc").Attr("a", " padded ").
			Leaf("V", val).
			Begin("Empty").End().
			End().Document()
	}
	var ids []int64
	for _, v := range []string{"NaN", "NaN", "Inf", "-Inf", "1.5", "", "  2.5  ", "text"} {
		ids = append(ids, tbl.Insert(mk(v)))
	}
	// Multi-text concatenation: element with two text children around a
	// child element.
	b := xmltree.NewBuilder()
	b.Begin("Doc").Begin("V").Text("12").Begin("Sep").End().Text("34").End().End()
	ids = append(ids, tbl.Insert(b.Document()))

	requireStatsEqual(t, "edge inserts", k.Stats(), Collect(tbl))

	// Remove one NaN and the concat doc; incremental must track both.
	tbl.Delete(ids[0])
	tbl.Delete(ids[len(ids)-1])
	requireStatsEqual(t, "edge deletes", k.Stats(), Collect(tbl))
}

// TestTableStatsMerge asserts the shard combinator: collecting two
// disjoint document subsets separately and merging yields the same
// statistics as collecting the whole table.
func TestTableStatsMerge(t *testing.T) {
	tbl := buildTable(t, 40)
	want := Collect(tbl)

	dict := tbl.PathDict()
	da, db := NewDelta(dict), NewDelta(dict)
	i := 0
	tbl.Scan(func(doc *xmltree.Document) bool {
		if i%2 == 0 {
			da.CollectDoc(doc)
		} else {
			db.CollectDoc(doc)
		}
		i++
		return true
	})
	a := FromDelta(tbl.Name, 0, da)
	b := FromDelta(tbl.Name, 0, db)
	merged, err := a.Merge(b, want.Version)
	if err != nil {
		t.Fatal(err)
	}
	requireStatsEqual(t, "merged shards", merged, want)
}

// TestApplyDeltaRequiresMergeableStore asserts reference-collected
// statistics refuse incremental maintenance instead of silently
// diverging.
func TestApplyDeltaRequiresMergeableStore(t *testing.T) {
	tbl := buildTable(t, 5)
	ref := CollectReference(tbl)
	d := NewDelta(tbl.PathDict())
	if _, err := ref.ApplyDelta(d, 1); err == nil {
		t.Fatal("ApplyDelta on reference-collected stats succeeded")
	}
	live := Collect(tbl)
	if _, err := live.ApplyDelta(live.acc, 1); err == nil {
		t.Fatal("ApplyDelta of a store onto itself succeeded")
	}
}
