package xstats

// Histogram is an equi-width histogram over the numeric values of one
// label path. Real optimizers estimate range selectivities from
// histograms rather than a min/max uniformity assumption; the synopsis
// collects one per path so skewed value distributions (e.g. TPoX order
// quantities) cost accurately.
type Histogram struct {
	Min, Max float64
	Total    int64
	Buckets  []int64
}

// histogramBuckets is the bucket count collected per path.
const histogramBuckets = 16

// newHistogram builds an equi-width histogram from samples.
func newHistogram(min, max float64, samples []float64) *Histogram {
	h := &Histogram{Min: min, Max: max, Buckets: make([]int64, histogramBuckets)}
	for _, v := range samples {
		h.add(v)
	}
	return h
}

func (h *Histogram) bucketOf(v float64) int {
	if h.Max <= h.Min {
		return 0
	}
	i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	return i
}

func (h *Histogram) add(v float64) {
	h.Buckets[h.bucketOf(v)]++
	h.Total++
}

// FractionBelow estimates P(value < bound) (or <= when incl), with
// linear interpolation inside the bound's bucket.
func (h *Histogram) FractionBelow(bound float64, incl bool) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	if bound < h.Min || (bound == h.Min && !incl) {
		return 0
	}
	if bound > h.Max || (bound == h.Max && incl) {
		return 1
	}
	width := (h.Max - h.Min) / float64(len(h.Buckets))
	if width <= 0 {
		// Degenerate single-point distribution.
		if bound > h.Min || (bound == h.Min && incl) {
			return 1
		}
		return 0
	}
	var below int64
	b := h.bucketOf(bound)
	for i := 0; i < b; i++ {
		below += h.Buckets[i]
	}
	// Interpolate within bucket b.
	lo := h.Min + float64(b)*width
	frac := (bound - lo) / width
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	partial := float64(h.Buckets[b]) * frac
	return (float64(below) + partial) / float64(h.Total)
}

// merge combines another histogram into h, rebucketing other's mass by
// bucket midpoints. Used when a pattern spans multiple label paths.
func (h *Histogram) merge(other *Histogram) *Histogram {
	if other == nil || other.Total == 0 {
		return h
	}
	if h == nil || h.Total == 0 {
		cp := &Histogram{Min: other.Min, Max: other.Max, Total: other.Total,
			Buckets: append([]int64(nil), other.Buckets...)}
		return cp
	}
	// Widen the domain, then redistribute both inputs by midpoint.
	min, max := h.Min, h.Max
	if other.Min < min {
		min = other.Min
	}
	if other.Max > max {
		max = other.Max
	}
	out := &Histogram{Min: min, Max: max, Buckets: make([]int64, histogramBuckets)}
	spread := func(src *Histogram) {
		width := (src.Max - src.Min) / float64(len(src.Buckets))
		for i, n := range src.Buckets {
			if n == 0 {
				continue
			}
			mid := src.Min + (float64(i)+0.5)*width
			if width <= 0 {
				mid = src.Min
			}
			out.Buckets[out.bucketOf(mid)] += n
			out.Total += n
		}
	}
	spread(h)
	spread(other)
	return out
}
