package xstats

import (
	"reflect"
	"testing"

	"xixa/internal/tpox"
	"xixa/internal/xpath"
)

// TestCollectMatchesReference asserts the single-pass PathID-keyed
// collector produces statistics identical to the seed recursive
// collector (CollectReference) on TPoX data: same paths, counts,
// distinct counts, value bytes, numeric bounds, and histograms.
func TestCollectMatchesReference(t *testing.T) {
	db, err := tpox.NewDatabase(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.TableNames() {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(tbl)
		want := CollectReference(tbl)

		if got.DocCount != want.DocCount || got.TotalNodes != want.TotalNodes {
			t.Fatalf("%s: doc/node counts = (%d,%d), want (%d,%d)",
				name, got.DocCount, got.TotalNodes, want.DocCount, want.TotalNodes)
		}
		if len(got.List) != len(want.List) {
			t.Fatalf("%s: %d paths, want %d", name, len(got.List), len(want.List))
		}
		for i, g := range got.List {
			w := want.List[i]
			if g.Path() != w.Path() {
				t.Fatalf("%s: List[%d] path %q, want %q", name, i, g.Path(), w.Path())
			}
			if !reflect.DeepEqual(g.Labels, w.Labels) {
				t.Errorf("%s %s: labels %v, want %v", name, g.Path(), g.Labels, w.Labels)
			}
			if g.Count != w.Count || g.DistinctStrings != w.DistinctStrings ||
				g.ValueBytes != w.ValueBytes || g.NumericCount != w.NumericCount ||
				g.DistinctNums != w.DistinctNums {
				t.Errorf("%s %s: counters (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
					name, g.Path(),
					g.Count, g.DistinctStrings, g.ValueBytes, g.NumericCount, g.DistinctNums,
					w.Count, w.DistinctStrings, w.ValueBytes, w.NumericCount, w.DistinctNums)
			}
			if g.Min != w.Min || g.Max != w.Max {
				t.Errorf("%s %s: bounds (%v,%v), want (%v,%v)", name, g.Path(), g.Min, g.Max, w.Min, w.Max)
			}
			if !reflect.DeepEqual(g.Hist, w.Hist) {
				t.Errorf("%s %s: histogram %+v, want %+v", name, g.Path(), g.Hist, w.Hist)
			}
			if ps, ok := got.Paths[g.Path()]; !ok || ps != g {
				t.Errorf("%s %s: Paths map does not point at List entry", name, g.Path())
			}
		}
	}
}

// TestForPatternMatchesReference asserts the dictionary-NFA matching
// behind ForPattern selects the same paths — and therefore derives
// bit-identical PatternStats — as per-path label matching over the
// reference collector's output.
func TestForPatternMatchesReference(t *testing.T) {
	db, err := tpox.NewDatabase(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table(tpox.TableSecurity)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(tbl)
	want := CollectReference(tbl)
	patterns := []string{
		"/Security/Symbol",
		"/Security/Yield",
		"/Security/SecInfo/*/Sector",
		"/Security//Sector",
		"//*",
		"//@*",
		"/Security/@id",
		"/Nonexistent/Path",
	}
	for _, text := range patterns {
		p := xpath.MustParse(text)
		for _, kind := range []xpath.ValueKind{xpath.StringVal, xpath.NumberVal} {
			g := got.ForPattern(p, kind)
			w := want.ForPattern(p, kind)
			if !reflect.DeepEqual(g, w) {
				t.Errorf("ForPattern(%s, %s) = %+v, want %+v", text, kind, g, w)
			}
		}
	}
}
