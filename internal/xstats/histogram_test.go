package xstats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

func TestHistogramUniform(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i) / 100 // uniform over [0, 10)
	}
	h := newHistogram(0, 9.99, samples)
	if h.Total != 1000 {
		t.Fatalf("Total = %d", h.Total)
	}
	for _, tc := range []struct {
		bound float64
		want  float64
	}{
		{0, 0}, {5, 0.5}, {9.99, 1}, {2.5, 0.25},
	} {
		got := h.FractionBelow(tc.bound, false)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("FractionBelow(%v) = %v, want ~%v", tc.bound, got, tc.want)
		}
	}
	if h.FractionBelow(-1, true) != 0 {
		t.Error("below min must be 0")
	}
	if h.FractionBelow(100, false) != 1 {
		t.Error("above max must be 1")
	}
}

func TestHistogramSkewed(t *testing.T) {
	// 90% of mass at the low end: a histogram must see the skew, the
	// min/max uniformity assumption cannot.
	var samples []float64
	for i := 0; i < 900; i++ {
		samples = append(samples, 1)
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, 100)
	}
	h := newHistogram(1, 100, samples)
	got := h.FractionBelow(50, true)
	if got < 0.85 || got > 0.95 {
		t.Errorf("skewed FractionBelow(50) = %v, want ~0.9", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := newHistogram(5, 5, []float64{5, 5, 5})
	if got := h.FractionBelow(5, true); got != 1 {
		t.Errorf("point distribution <=5 = %v, want 1", got)
	}
	if got := h.FractionBelow(5, false); got != 0 {
		t.Errorf("point distribution <5 = %v, want 0", got)
	}
	var nilH *Histogram
	if nilH.FractionBelow(1, true) != 0 {
		t.Error("nil histogram must report 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram(0, 10, []float64{1, 2, 3})
	b := newHistogram(50, 100, []float64{60, 70, 80})
	m := a.merge(b)
	if m.Total != 6 {
		t.Fatalf("merged total = %d", m.Total)
	}
	if m.Min != 0 || m.Max != 100 {
		t.Errorf("merged range = [%v,%v]", m.Min, m.Max)
	}
	// Half the mass below 25.
	got := m.FractionBelow(25, true)
	if got < 0.4 || got > 0.6 {
		t.Errorf("merged FractionBelow(25) = %v, want ~0.5", got)
	}
	// Merging with nil/empty is identity-ish.
	if a.merge(nil).Total != a.Total {
		t.Error("merge(nil) lost mass")
	}
	var nilH *Histogram
	if nilH.merge(a).Total != a.Total {
		t.Error("nil.merge(a) lost mass")
	}
}

// TestPropertyHistogramMatchesEmpirical: FractionBelow approximates the
// true empirical CDF within bucket resolution.
func TestPropertyHistogramMatchesEmpirical(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(400)
		samples := make([]float64, n)
		min, max := math.Inf(1), math.Inf(-1)
		for i := range samples {
			samples[i] = r.Float64()*100 - 50
			min = math.Min(min, samples[i])
			max = math.Max(max, samples[i])
		}
		h := newHistogram(min, max, samples)
		for probe := 0; probe < 10; probe++ {
			bound := r.Float64()*100 - 50
			truth := 0
			for _, v := range samples {
				if v <= bound {
					truth++
				}
			}
			got := h.FractionBelow(bound, true)
			want := float64(truth) / float64(n)
			// Within 1.5 bucket widths of mass.
			if math.Abs(got-want) > 1.5/float64(histogramBuckets)+0.02 {
				t.Logf("seed %d: FractionBelow(%v) = %v, empirical %v", seed, bound, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSelectivityUsesHistogramForSkew(t *testing.T) {
	// Build a table whose Qty values are heavily skewed: 95% small,
	// 5% large. Histogram-based selectivity must see that a "> mid"
	// range is rare; the uniformity assumption would say ~50%.
	tbl := storage.NewTable("T")
	for i := 0; i < 950; i++ {
		tbl.Insert(xmltree.MustParse(`<r><q>1</q></r>`))
	}
	for i := 0; i < 50; i++ {
		tbl.Insert(xmltree.MustParse(`<r><q>1000</q></r>`))
	}
	ts := Collect(tbl)
	ps := ts.ForPattern(xpath.MustParse("/r/q"), xpath.NumberVal)
	if ps.Hist == nil {
		t.Fatal("no histogram collected")
	}
	sel := ps.Selectivity(xpath.OpGt, xpath.NumberValue(500))
	if sel > 0.15 {
		t.Errorf("skew-aware selectivity = %v, want ~0.05 (uniform would say ~0.5)", sel)
	}
	selLow := ps.Selectivity(xpath.OpLe, xpath.NumberValue(500))
	if selLow < 0.85 {
		t.Errorf("complementary selectivity = %v, want ~0.95", selLow)
	}
}
