package xstats

import (
	"fmt"
	"math/rand"
	"testing"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
)

// shardDoc builds document i of the property-test corpus. It is a pure
// function of i, so every shard table materializes byte-identical
// copies without sharing (and thus re-interning) one Document across
// dictionaries. The corpus mixes attributes, categorical duplicates,
// numeric duplicates, empty values, and structural variation so the
// merge has to reconcile every accumulator field, not just counts.
func shardDoc(i int) *xmltree.Document {
	sectors := []string{"Energy", "Tech", "Finance", "Retail", ""}
	b := xmltree.NewBuilder().
		Begin("Security").
		Attr("id", fmt.Sprintf("S%04d", i)).
		Leaf("Symbol", fmt.Sprintf("SYM%05d", i%17)). // duplicates across docs
		LeafFloat("Yield", float64(i%7)/2).
		Begin("SecInfo").Begin("StockInformation").
		Leaf("Sector", sectors[i%len(sectors)]).
		End().End()
	if i%3 == 0 {
		b.Leaf("PE", fmt.Sprintf("%d.5", i%11))
	}
	if i%5 == 0 {
		b.Begin("Notes").Text("mixed ").Begin("Em").Text("text").End().Text(" doc").End()
	}
	return b.End().Document()
}

// requireSynopsisEqual asserts two TableStats describe the same
// synopsis — identical paths (by rooted label path), counters, bounds,
// and histograms. Unlike requireStatsEqual it ignores PathID and
// Version: shard tables intern paths in their own arrival order, so a
// merged synopsis legitimately numbers paths differently from an
// unsharded collection while meaning exactly the same thing.
func requireSynopsisEqual(t *testing.T, label string, got, want *TableStats) {
	t.Helper()
	if got.DocCount != want.DocCount || got.TotalNodes != want.TotalNodes {
		t.Fatalf("%s: doc/node counts = (%d,%d), want (%d,%d)",
			label, got.DocCount, got.TotalNodes, want.DocCount, want.TotalNodes)
	}
	if len(got.List) != len(want.List) {
		t.Fatalf("%s: %d paths, want %d", label, len(got.List), len(want.List))
	}
	for i, g := range got.List {
		w := want.List[i]
		if g.Path() != w.Path() {
			t.Fatalf("%s: List[%d] = %q, want %q", label, i, g.Path(), w.Path())
		}
		if g.Count != w.Count || g.DistinctStrings != w.DistinctStrings ||
			g.ValueBytes != w.ValueBytes || g.NumericCount != w.NumericCount ||
			g.DistinctNums != w.DistinctNums {
			t.Fatalf("%s %s: counters (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
				label, g.Path(),
				g.Count, g.DistinctStrings, g.ValueBytes, g.NumericCount, g.DistinctNums,
				w.Count, w.DistinctStrings, w.ValueBytes, w.NumericCount, w.DistinctNums)
		}
		if !eqFloat(g.Min, w.Min) || !eqFloat(g.Max, w.Max) {
			t.Fatalf("%s %s: bounds (%v,%v), want (%v,%v)", label, g.Path(), g.Min, g.Max, w.Min, w.Max)
		}
		if !eqHist(g.Hist, w.Hist) {
			t.Fatalf("%s %s: histogram %+v, want %+v", label, g.Path(), g.Hist, w.Hist)
		}
	}
}

// mergeParts folds shard synopses into a fresh global base (its own
// dictionary, as the sharded stats plane does) in the given order.
func mergeParts(t *testing.T, parts []*TableStats, order []int) *TableStats {
	t.Helper()
	base := FromDelta("SECURITY", 0, NewDelta(xmltree.NewPathDict()))
	for _, k := range order {
		var err error
		base, err = base.Merge(parts[k], 0)
		if err != nil {
			t.Fatalf("merge part %d: %v", k, err)
		}
	}
	return base
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestMergeKWaySplitProperty is sharding's foundation as a property
// test: split a table's documents across K shard tables — each with
// its own path dictionary, as real shards have — collect each shard
// separately, and merge. However the split is drawn and however the
// merge is ordered or grouped, the result must carry the synopsis of
// an unsharded Collect of the whole table:
//
//   - commutative: merging in any permutation of shard order matches
//   - associative: merging grouped sub-merges matches
//   - lossless: both match the unsharded collection bit-for-bit
//     (modulo dictionary numbering, which carries no information)
func TestMergeKWaySplitProperty(t *testing.T) {
	const docs = 60
	whole := storage.NewTable("SECURITY")
	for i := 0; i < docs; i++ {
		whole.Insert(shardDoc(i))
	}
	want := Collect(whole)

	rng := rand.New(rand.NewSource(1914))
	for trial := 0; trial < 8; trial++ {
		k := 2 + rng.Intn(4) // 2..5 shards
		assign := make([]int, docs)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}

		parts := make([]*TableStats, k)
		for s := 0; s < k; s++ {
			tbl := storage.NewTable("SECURITY")
			for i := 0; i < docs; i++ {
				if assign[i] == s {
					tbl.Insert(shardDoc(i))
				}
			}
			parts[s] = Collect(tbl)
		}

		label := fmt.Sprintf("trial %d (k=%d)", trial, k)
		inOrder := mergeParts(t, parts, identity(k))
		requireSynopsisEqual(t, label+" in-order", inOrder, want)

		// Commutativity: a random permutation of the merge order.
		requireSynopsisEqual(t, label+" permuted", mergeParts(t, parts, rng.Perm(k)), want)

		// Associativity: merge two disjoint groups separately, then
		// merge the group results (each group base has its own
		// dictionary, exercising the cross-dict rebase twice).
		cut := 1 + rng.Intn(k-1)
		left := mergeParts(t, parts, identity(k)[:cut])
		right := mergeParts(t, parts, identity(k)[cut:])
		grouped, err := left.Merge(right, 0)
		if err != nil {
			t.Fatalf("%s grouped merge: %v", label, err)
		}
		requireSynopsisEqual(t, label+" grouped", grouped, want)

		// The parts must remain readable and intact after every merge
		// read their stores: re-merging in order must still match.
		requireSynopsisEqual(t, label+" re-merged", mergeParts(t, parts, identity(k)), want)
	}
}
