// Package xstats implements the statistics substrate (the RUNSTATS
// analog of the paper's §III): a path synopsis per table recording, for
// every distinct rooted label path in the data, the node count, distinct
// values, value bytes, and numeric value distribution.
//
// The optimizer's cost model estimates selectivities from these
// statistics, and the advisor derives virtual-index statistics (size,
// levels, entries) from them — exactly the role RUNSTATS output plays
// for DB2's virtual indexes in the paper.
//
// Collection is a single linear pass over each document's flat node
// slice: element text is accumulated once from the contiguous
// (ID, EndID] subtree ranges, the numeric interpretation parses that
// same string, and per-path accumulators are indexed densely by the
// table dictionary's PathIDs — no per-node subtree walks, path string
// joins, or string-keyed map lookups.
package xstats

import (
	"math"
	"strings"
	"sync"

	"xixa/internal/btree"
	"xixa/internal/storage"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

// PathStat aggregates the nodes sharing one rooted label path.
type PathStat struct {
	// Labels is the rooted label path, e.g. ["Security","SecInfo","Sector"].
	// Attribute labels are spelled "@name".
	Labels []string
	// PathID is the path's ID in the table dictionary the stats were
	// collected against (NoPath when collected without a dictionary).
	PathID xmltree.PathID
	// Count is the number of nodes with this label path.
	Count int64
	// DistinctStrings is the number of distinct string values.
	DistinctStrings int64
	// ValueBytes is the total size of all (string) values.
	ValueBytes int64
	// NumericCount is how many values parse as numbers.
	NumericCount int64
	// DistinctNums is the number of distinct numeric values.
	DistinctNums int64
	// Min and Max bound the numeric values (valid when NumericCount > 0).
	Min, Max float64
	// Hist is the equi-width histogram of numeric values (nil when the
	// path has none).
	Hist *Histogram
}

// Path returns the rendered label path, e.g. "/Security/SecInfo/Sector".
func (p *PathStat) Path() string {
	return "/" + strings.Join(p.Labels, "/")
}

// TableStats is the collected synopsis of one table.
type TableStats struct {
	Table      string
	Version    int64 // table version at collection time
	DocCount   int64
	TotalNodes int64
	// Paths maps rendered label paths to their statistics.
	Paths map[string]*PathStat
	// List holds the same PathStats sorted by path for deterministic
	// iteration.
	List []*PathStat

	// dict is the table dictionary the stats were collected against
	// (nil for the reference collector). byID indexes List's entries by
	// PathID for O(1) per-path lookup.
	dict *xmltree.PathDict
	byID []*PathStat

	// acc is the retained mergeable accumulator store (see delta.go):
	// exact value multisets that ApplyDelta folds change deltas into, so
	// statistics track a live insert/delete stream without re-scanning
	// the table. Nil for the reference collector, whose stats cannot be
	// incrementally maintained.
	acc *Delta

	// mu guards the caches below. A read-write lock because ForPattern
	// is on the optimizer's hot path and, once warm, is all cache hits —
	// parallel advisor pipelines would otherwise serialize here.
	mu           sync.RWMutex
	patternCache map[string]PatternStats
	// matchedCache memoizes, per stripped pattern, the List entries the
	// pattern matches — the pattern is matched against the (tiny)
	// dictionary once instead of per ForPattern type variant.
	matchedCache map[string][]*PathStat
}

// PathDict returns the dictionary the statistics were collected
// against, or nil when collected without one.
func (ts *TableStats) PathDict() *xmltree.PathDict { return ts.dict }

// ByPathID returns the statistics of one interned path, or nil.
func (ts *TableStats) ByPathID(id xmltree.PathID) *PathStat {
	if id < 0 || int(id) >= len(ts.byID) {
		return nil
	}
	return ts.byID[id]
}

// Collect scans every document of the table and builds its synopsis in
// one linear pass per document. This is the system's RUNSTATS. The
// result retains its mergeable accumulator store, so it can be kept
// current under updates with ApplyDelta instead of re-collecting.
func Collect(t *storage.Table) *TableStats {
	version := t.Version()
	d := NewDelta(t.PathDict())
	t.Scan(func(doc *xmltree.Document) bool {
		d.CollectDoc(doc)
		return true
	})
	return FromDelta(t.Name, version, d)
}

// AvgNodesPerDoc returns the mean document size in nodes.
func (ts *TableStats) AvgNodesPerDoc() float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(ts.TotalNodes) / float64(ts.DocCount)
}

// PatternStats is the derived statistics of a (possibly virtual) index
// on a linear pattern — what the paper derives from RUNSTATS data for
// its virtual indexes: size, number of levels, entry counts, and the
// value distribution inputs of the cost model.
type PatternStats struct {
	// Entries is the number of index entries (nodes matched by the
	// pattern; for numeric indexes only numeric-valued nodes count).
	Entries int64
	// KeyBytes is the total encoded key size.
	KeyBytes int64
	// Distinct is the number of distinct keys (approximated by summing
	// per-path distinct counts; an upper bound).
	Distinct int64
	// Min and Max bound numeric keys (numeric indexes only).
	Min, Max float64
	// Hist is the merged numeric-value histogram (nil for string
	// patterns or when no numeric values matched).
	Hist *Histogram
	// SizeBytes is the estimated on-disk size of the index.
	SizeBytes int64
	// Levels is the estimated number of B+-tree levels.
	Levels int
}

// EntriesPerDoc returns the mean number of index entries per document.
func (ts *TableStats) EntriesPerDoc(p PatternStats) float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(p.Entries) / float64(ts.DocCount)
}

// numericKeyBytes is the encoded size of a double key (tag + 8 bytes),
// mirroring xindex's key encoding.
const numericKeyBytes = 9

// matchedStats returns the List entries (in List order) whose label
// path the linear pattern matches, memoized per stripped pattern. With
// a dictionary the pattern NFA is threaded parent→child over the
// dictionary's entries — O(paths·steps) regardless of depth; without
// one (reference collector) each entry's label slice is matched
// directly.
func (ts *TableStats) matchedStats(strip string, p xpath.Path) []*PathStat {
	ts.mu.RLock()
	matched, ok := ts.matchedCache[strip]
	ts.mu.RUnlock()
	if ok {
		return matched
	}

	if ts.dict != nil && xpath.CompilablePattern(p) {
		pm := xpath.NewPathMatcher(p)
		snap := ts.dict.Snapshot()
		states := pm.ExtendStates(snap, make([]xpath.MatchState, 0, len(snap)))
		for _, st := range ts.List {
			if st.PathID >= 0 && int(st.PathID) < len(states) && pm.Matched(states[st.PathID]) {
				matched = append(matched, st)
			}
		}
	} else {
		for _, st := range ts.List {
			if xpath.MatchesLabelPath(p, st.Labels) {
				matched = append(matched, st)
			}
		}
	}

	ts.mu.Lock()
	if ts.matchedCache == nil {
		ts.matchedCache = make(map[string][]*PathStat)
	}
	ts.matchedCache[strip] = matched
	ts.mu.Unlock()
	return matched
}

// ForPattern aggregates the synopsis over all label paths matched by the
// linear pattern, producing the statistics a virtual index on that
// pattern would have. Results are memoized per (pattern, kind).
func (ts *TableStats) ForPattern(p xpath.Path, kind xpath.ValueKind) PatternStats {
	strip := p.StripPreds().String()
	key := strip + "|" + kind.String()
	ts.mu.RLock()
	if ps, ok := ts.patternCache[key]; ok {
		ts.mu.RUnlock()
		return ps
	}
	ts.mu.RUnlock()

	var out PatternStats
	first := true
	for _, st := range ts.matchedStats(strip, p) {
		if kind == xpath.NumberVal {
			out.Entries += st.NumericCount
			out.KeyBytes += st.NumericCount * numericKeyBytes
			out.Distinct += st.DistinctNums
			if st.NumericCount > 0 {
				if first {
					out.Min, out.Max = st.Min, st.Max
					first = false
				} else {
					out.Min = math.Min(out.Min, st.Min)
					out.Max = math.Max(out.Max, st.Max)
				}
				out.Hist = out.Hist.merge(st.Hist)
			}
		} else {
			out.Entries += st.Count
			// +1 per key for the type tag byte used by the key encoding.
			out.KeyBytes += st.ValueBytes + st.Count
			out.Distinct += st.DistinctStrings
		}
	}
	out.SizeBytes = btree.EstimateSizeBytes(int(out.Entries), out.KeyBytes, 0)
	out.Levels = btree.EstimateLevels(int(out.Entries), 0)

	ts.mu.Lock()
	ts.patternCache[key] = out
	ts.mu.Unlock()
	return out
}

// Selectivity estimates the fraction of index entries satisfying a
// comparison against a literal, using a uniformity assumption over the
// distinct values (equality) or the numeric range (inequalities) — the
// standard System-R style estimators the DB2 cost model also applies.
func (p PatternStats) Selectivity(op xpath.CmpOp, lit xpath.Value) float64 {
	if p.Entries == 0 {
		return 0
	}
	distinct := float64(p.Distinct)
	if distinct < 1 {
		distinct = 1
	}
	eq := 1 / distinct
	switch op {
	case xpath.OpEq:
		return eq
	case xpath.OpNe:
		return clamp01(1 - eq)
	}
	// Range operators: use the histogram when available, falling back
	// to a min/max uniformity assumption.
	if lit.Kind == xpath.NumberVal {
		if p.Hist != nil && p.Hist.Total > 0 {
			switch op {
			case xpath.OpLt:
				return clamp01(p.Hist.FractionBelow(lit.Num, false))
			case xpath.OpLe:
				return clamp01(p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGt:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGe:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, false))
			}
		}
		span := p.Max - p.Min
		if span <= 0 {
			// Degenerate distribution: everything equal; a range either
			// takes all or nothing, assume half as a neutral default.
			return 0.5
		}
		var frac float64
		switch op {
		case xpath.OpLt, xpath.OpLe:
			frac = (lit.Num - p.Min) / span
		case xpath.OpGt, xpath.OpGe:
			frac = (p.Max - lit.Num) / span
		}
		return clamp01(frac)
	}
	// String ranges: no order statistics kept; use the classic 1/3.
	return 1.0 / 3.0
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
