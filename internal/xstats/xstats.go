// Package xstats implements the statistics substrate (the RUNSTATS
// analog of the paper's §III): a path synopsis per table recording, for
// every distinct rooted label path in the data, the node count, distinct
// values, value bytes, and numeric value distribution.
//
// The optimizer's cost model estimates selectivities from these
// statistics, and the advisor derives virtual-index statistics (size,
// levels, entries) from them — exactly the role RUNSTATS output plays
// for DB2's virtual indexes in the paper.
//
// Collection is a single linear pass over each document's flat node
// slice: element text is accumulated once from the contiguous
// (ID, EndID] subtree ranges, the numeric interpretation parses that
// same string, and per-path accumulators are indexed densely by the
// table dictionary's PathIDs — no per-node subtree walks, path string
// joins, or string-keyed map lookups.
package xstats

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xixa/internal/btree"
	"xixa/internal/storage"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

// PathStat aggregates the nodes sharing one rooted label path.
type PathStat struct {
	// Labels is the rooted label path, e.g. ["Security","SecInfo","Sector"].
	// Attribute labels are spelled "@name".
	Labels []string
	// PathID is the path's ID in the table dictionary the stats were
	// collected against (NoPath when collected without a dictionary).
	PathID xmltree.PathID
	// Count is the number of nodes with this label path.
	Count int64
	// DistinctStrings is the number of distinct string values.
	DistinctStrings int64
	// ValueBytes is the total size of all (string) values.
	ValueBytes int64
	// NumericCount is how many values parse as numbers.
	NumericCount int64
	// DistinctNums is the number of distinct numeric values.
	DistinctNums int64
	// Min and Max bound the numeric values (valid when NumericCount > 0).
	Min, Max float64
	// Hist is the equi-width histogram of numeric values (nil when the
	// path has none).
	Hist *Histogram
}

// Path returns the rendered label path, e.g. "/Security/SecInfo/Sector".
func (p *PathStat) Path() string {
	return "/" + strings.Join(p.Labels, "/")
}

// TableStats is the collected synopsis of one table.
type TableStats struct {
	Table      string
	Version    int64 // table version at collection time
	DocCount   int64
	TotalNodes int64
	// Paths maps rendered label paths to their statistics.
	Paths map[string]*PathStat
	// List holds the same PathStats sorted by path for deterministic
	// iteration.
	List []*PathStat

	// dict is the table dictionary the stats were collected against
	// (nil for the reference collector). byID indexes List's entries by
	// PathID for O(1) per-path lookup.
	dict *xmltree.PathDict
	byID []*PathStat

	// mu guards the caches below. A read-write lock because ForPattern
	// is on the optimizer's hot path and, once warm, is all cache hits —
	// parallel advisor pipelines would otherwise serialize here.
	mu           sync.RWMutex
	patternCache map[string]PatternStats
	// matchedCache memoizes, per stripped pattern, the List entries the
	// pattern matches — the pattern is matched against the (tiny)
	// dictionary once instead of per ForPattern type variant.
	matchedCache map[string][]*PathStat
}

// PathDict returns the dictionary the statistics were collected
// against, or nil when collected without one.
func (ts *TableStats) PathDict() *xmltree.PathDict { return ts.dict }

// ByPathID returns the statistics of one interned path, or nil.
func (ts *TableStats) ByPathID(id xmltree.PathID) *PathStat {
	if id < 0 || int(id) >= len(ts.byID) {
		return nil
	}
	return ts.byID[id]
}

// pathAcc is the per-path accumulator state used during collection that
// does not survive into PathStat.
type pathAcc struct {
	ps          *PathStat
	distinctStr map[string]struct{}
	distinctNum map[float64]struct{}
	samples     []float64
}

// parseNumericBytes is xmltree.ParseNumeric over a trimmed byte view;
// the string is only materialized for plausible numeric candidates
// (xmltree.NumericLead rejects the common non-numeric case first).
func parseNumericBytes(b []byte) (float64, bool) {
	if len(b) == 0 || !xmltree.NumericLead(b[0]) {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Collect scans every document of the table and builds its synopsis in
// one linear pass per document. This is the system's RUNSTATS.
func Collect(t *storage.Table) *TableStats {
	dict := t.PathDict()
	ts := &TableStats{
		Table:        t.Name,
		Version:      t.Version(),
		Paths:        make(map[string]*PathStat),
		dict:         dict,
		patternCache: make(map[string]PatternStats),
		matchedCache: make(map[string][]*PathStat),
	}

	var accs []pathAcc
	// Per-document scratch, reused across documents: textAt lists the
	// IDs of text nodes in document order, textCnt[i] counts text nodes
	// with ID < i, so the text nodes inside a subtree (id, end] are
	// textAt[textCnt[id+1]:textCnt[end+1]] — element text accumulates
	// from these contiguous ranges without walking the subtree. textBuf
	// holds multi-text-node concatenations so interior elements do not
	// allocate a string per node.
	var textAt []xmltree.NodeID
	var textCnt []int32
	var textBuf []byte

	t.Scan(func(doc *xmltree.Document) bool {
		ts.DocCount++
		ts.TotalNodes += int64(doc.Len())
		if doc.Dict != dict || len(doc.PathIDs) != doc.Len() {
			// Defensive: Table.Insert interns on the way in, so this is
			// only reachable for documents placed by unusual means.
			doc.InternPaths(dict)
		}
		n := doc.Len()
		textAt = textAt[:0]
		if cap(textCnt) < n+1 {
			textCnt = make([]int32, n+1)
		} else {
			textCnt = textCnt[:n+1]
		}
		for i := 0; i < n; i++ {
			textCnt[i] = int32(len(textAt))
			if doc.Nodes[i].Kind == xmltree.Text {
				textAt = append(textAt, xmltree.NodeID(i))
			}
		}
		textCnt[n] = int32(len(textAt))

		for i := 0; i < n; i++ {
			node := &doc.Nodes[i]
			if node.Kind == xmltree.Text {
				continue
			}
			pid := doc.PathIDs[i]
			if int(pid) >= len(accs) {
				grown := make([]pathAcc, dict.Len())
				copy(grown, accs)
				accs = grown
			}
			acc := &accs[pid]
			if acc.ps == nil {
				acc.ps = &PathStat{PathID: pid}
				acc.distinctStr = make(map[string]struct{})
				acc.distinctNum = make(map[float64]struct{})
			}
			ps := acc.ps

			// Value extraction is allocation-free: attribute and
			// single-text values are trimmed views of existing strings,
			// and multi-text (interior element) concatenations land in
			// the reused byte buffer — a new string is only materialized
			// the first time a distinct concatenated value (or one of its
			// numeric candidates) is seen.
			var val string
			var valb []byte
			concat := false
			if node.Kind == xmltree.Attribute {
				val = strings.TrimSpace(node.Value)
			} else {
				span := textAt[textCnt[node.ID+1]:textCnt[node.EndID+1]]
				switch len(span) {
				case 0:
				case 1:
					val = strings.TrimSpace(doc.Nodes[span[0]].Value)
				default:
					textBuf = textBuf[:0]
					for _, tid := range span {
						textBuf = append(textBuf, doc.Nodes[tid].Value...)
					}
					valb = bytes.TrimSpace(textBuf)
					concat = true
				}
			}

			ps.Count++
			var f float64
			var ok bool
			if concat {
				ps.ValueBytes += int64(len(valb))
				if _, seen := acc.distinctStr[string(valb)]; !seen { // no-alloc lookup
					acc.distinctStr[string(valb)] = struct{}{}
					ps.DistinctStrings++
				}
				f, ok = parseNumericBytes(valb)
			} else {
				ps.ValueBytes += int64(len(val))
				if _, seen := acc.distinctStr[val]; !seen {
					acc.distinctStr[val] = struct{}{}
					ps.DistinctStrings++
				}
				f, ok = xmltree.ParseNumeric(val)
			}
			if ok {
				if ps.NumericCount == 0 {
					ps.Min, ps.Max = f, f
				} else {
					ps.Min = math.Min(ps.Min, f)
					ps.Max = math.Max(ps.Max, f)
				}
				ps.NumericCount++
				acc.samples = append(acc.samples, f)
				if _, seen := acc.distinctNum[f]; !seen {
					acc.distinctNum[f] = struct{}{}
					ps.DistinctNums++
				}
			}
		}
		return true
	})

	ts.byID = make([]*PathStat, len(accs))
	ts.List = make([]*PathStat, 0, len(accs))
	for pid := range accs {
		acc := &accs[pid]
		if acc.ps == nil {
			continue
		}
		ps := acc.ps
		ps.Labels = dict.Labels(xmltree.PathID(pid))
		if len(acc.samples) > 0 {
			ps.Hist = newHistogram(ps.Min, ps.Max, acc.samples)
		}
		ts.byID[pid] = ps
		ts.Paths[dict.Path(xmltree.PathID(pid))] = ps
		ts.List = append(ts.List, ps)
	}
	sort.Slice(ts.List, func(i, j int) bool { return ts.List[i].Path() < ts.List[j].Path() })
	return ts
}

// AvgNodesPerDoc returns the mean document size in nodes.
func (ts *TableStats) AvgNodesPerDoc() float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(ts.TotalNodes) / float64(ts.DocCount)
}

// PatternStats is the derived statistics of a (possibly virtual) index
// on a linear pattern — what the paper derives from RUNSTATS data for
// its virtual indexes: size, number of levels, entry counts, and the
// value distribution inputs of the cost model.
type PatternStats struct {
	// Entries is the number of index entries (nodes matched by the
	// pattern; for numeric indexes only numeric-valued nodes count).
	Entries int64
	// KeyBytes is the total encoded key size.
	KeyBytes int64
	// Distinct is the number of distinct keys (approximated by summing
	// per-path distinct counts; an upper bound).
	Distinct int64
	// Min and Max bound numeric keys (numeric indexes only).
	Min, Max float64
	// Hist is the merged numeric-value histogram (nil for string
	// patterns or when no numeric values matched).
	Hist *Histogram
	// SizeBytes is the estimated on-disk size of the index.
	SizeBytes int64
	// Levels is the estimated number of B+-tree levels.
	Levels int
}

// EntriesPerDoc returns the mean number of index entries per document.
func (ts *TableStats) EntriesPerDoc(p PatternStats) float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(p.Entries) / float64(ts.DocCount)
}

// numericKeyBytes is the encoded size of a double key (tag + 8 bytes),
// mirroring xindex's key encoding.
const numericKeyBytes = 9

// matchedStats returns the List entries (in List order) whose label
// path the linear pattern matches, memoized per stripped pattern. With
// a dictionary the pattern NFA is threaded parent→child over the
// dictionary's entries — O(paths·steps) regardless of depth; without
// one (reference collector) each entry's label slice is matched
// directly.
func (ts *TableStats) matchedStats(strip string, p xpath.Path) []*PathStat {
	ts.mu.RLock()
	matched, ok := ts.matchedCache[strip]
	ts.mu.RUnlock()
	if ok {
		return matched
	}

	if ts.dict != nil && xpath.CompilablePattern(p) {
		pm := xpath.NewPathMatcher(p)
		snap := ts.dict.Snapshot()
		states := pm.ExtendStates(snap, make([]xpath.MatchState, 0, len(snap)))
		for _, st := range ts.List {
			if st.PathID >= 0 && int(st.PathID) < len(states) && pm.Matched(states[st.PathID]) {
				matched = append(matched, st)
			}
		}
	} else {
		for _, st := range ts.List {
			if xpath.MatchesLabelPath(p, st.Labels) {
				matched = append(matched, st)
			}
		}
	}

	ts.mu.Lock()
	if ts.matchedCache == nil {
		ts.matchedCache = make(map[string][]*PathStat)
	}
	ts.matchedCache[strip] = matched
	ts.mu.Unlock()
	return matched
}

// ForPattern aggregates the synopsis over all label paths matched by the
// linear pattern, producing the statistics a virtual index on that
// pattern would have. Results are memoized per (pattern, kind).
func (ts *TableStats) ForPattern(p xpath.Path, kind xpath.ValueKind) PatternStats {
	strip := p.StripPreds().String()
	key := strip + "|" + kind.String()
	ts.mu.RLock()
	if ps, ok := ts.patternCache[key]; ok {
		ts.mu.RUnlock()
		return ps
	}
	ts.mu.RUnlock()

	var out PatternStats
	first := true
	for _, st := range ts.matchedStats(strip, p) {
		if kind == xpath.NumberVal {
			out.Entries += st.NumericCount
			out.KeyBytes += st.NumericCount * numericKeyBytes
			out.Distinct += st.DistinctNums
			if st.NumericCount > 0 {
				if first {
					out.Min, out.Max = st.Min, st.Max
					first = false
				} else {
					out.Min = math.Min(out.Min, st.Min)
					out.Max = math.Max(out.Max, st.Max)
				}
				out.Hist = out.Hist.merge(st.Hist)
			}
		} else {
			out.Entries += st.Count
			// +1 per key for the type tag byte used by the key encoding.
			out.KeyBytes += st.ValueBytes + st.Count
			out.Distinct += st.DistinctStrings
		}
	}
	out.SizeBytes = btree.EstimateSizeBytes(int(out.Entries), out.KeyBytes, 0)
	out.Levels = btree.EstimateLevels(int(out.Entries), 0)

	ts.mu.Lock()
	ts.patternCache[key] = out
	ts.mu.Unlock()
	return out
}

// Selectivity estimates the fraction of index entries satisfying a
// comparison against a literal, using a uniformity assumption over the
// distinct values (equality) or the numeric range (inequalities) — the
// standard System-R style estimators the DB2 cost model also applies.
func (p PatternStats) Selectivity(op xpath.CmpOp, lit xpath.Value) float64 {
	if p.Entries == 0 {
		return 0
	}
	distinct := float64(p.Distinct)
	if distinct < 1 {
		distinct = 1
	}
	eq := 1 / distinct
	switch op {
	case xpath.OpEq:
		return eq
	case xpath.OpNe:
		return clamp01(1 - eq)
	}
	// Range operators: use the histogram when available, falling back
	// to a min/max uniformity assumption.
	if lit.Kind == xpath.NumberVal {
		if p.Hist != nil && p.Hist.Total > 0 {
			switch op {
			case xpath.OpLt:
				return clamp01(p.Hist.FractionBelow(lit.Num, false))
			case xpath.OpLe:
				return clamp01(p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGt:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGe:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, false))
			}
		}
		span := p.Max - p.Min
		if span <= 0 {
			// Degenerate distribution: everything equal; a range either
			// takes all or nothing, assume half as a neutral default.
			return 0.5
		}
		var frac float64
		switch op {
		case xpath.OpLt, xpath.OpLe:
			frac = (lit.Num - p.Min) / span
		case xpath.OpGt, xpath.OpGe:
			frac = (p.Max - lit.Num) / span
		}
		return clamp01(frac)
	}
	// String ranges: no order statistics kept; use the classic 1/3.
	return 1.0 / 3.0
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
