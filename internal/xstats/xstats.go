// Package xstats implements the statistics substrate (the RUNSTATS
// analog of the paper's §III): a path synopsis per table recording, for
// every distinct rooted label path in the data, the node count, distinct
// values, value bytes, and numeric value distribution.
//
// The optimizer's cost model estimates selectivities from these
// statistics, and the advisor derives virtual-index statistics (size,
// levels, entries) from them — exactly the role RUNSTATS output plays
// for DB2's virtual indexes in the paper.
package xstats

import (
	"math"
	"sort"
	"strings"
	"sync"

	"xixa/internal/btree"
	"xixa/internal/storage"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

// PathStat aggregates the nodes sharing one rooted label path.
type PathStat struct {
	// Labels is the rooted label path, e.g. ["Security","SecInfo","Sector"].
	// Attribute labels are spelled "@name".
	Labels []string
	// Count is the number of nodes with this label path.
	Count int64
	// DistinctStrings is the number of distinct string values.
	DistinctStrings int64
	// ValueBytes is the total size of all (string) values.
	ValueBytes int64
	// NumericCount is how many values parse as numbers.
	NumericCount int64
	// DistinctNums is the number of distinct numeric values.
	DistinctNums int64
	// Min and Max bound the numeric values (valid when NumericCount > 0).
	Min, Max float64
	// Hist is the equi-width histogram of numeric values (nil when the
	// path has none).
	Hist *Histogram
}

// Path returns the rendered label path, e.g. "/Security/SecInfo/Sector".
func (p *PathStat) Path() string {
	return "/" + strings.Join(p.Labels, "/")
}

// TableStats is the collected synopsis of one table.
type TableStats struct {
	Table      string
	Version    int64 // table version at collection time
	DocCount   int64
	TotalNodes int64
	// Paths maps rendered label paths to their statistics.
	Paths map[string]*PathStat
	// List holds the same PathStats sorted by path for deterministic
	// iteration.
	List []*PathStat

	// mu guards patternCache. A read-write lock because ForPattern is
	// on the optimizer's hot path and, once warm, is all cache hits —
	// parallel advisor pipelines would otherwise serialize here.
	mu           sync.RWMutex
	patternCache map[string]PatternStats
}

// Collect walks every document of the table and builds its synopsis.
// This is the system's RUNSTATS.
func Collect(t *storage.Table) *TableStats {
	ts := &TableStats{
		Table:        t.Name,
		Version:      t.Version(),
		Paths:        make(map[string]*PathStat),
		patternCache: make(map[string]PatternStats),
	}
	distinctStr := make(map[string]map[string]struct{})
	distinctNum := make(map[string]map[float64]struct{})
	numSamples := make(map[string][]float64)

	t.Scan(func(doc *xmltree.Document) bool {
		ts.DocCount++
		ts.TotalNodes += int64(doc.Len())
		var labels []string
		var walk func(id xmltree.NodeID)
		walk = func(id xmltree.NodeID) {
			n := doc.Node(id)
			label := n.Name
			if n.Kind == xmltree.Attribute {
				label = "@" + label
			}
			labels = append(labels, label)
			key := "/" + strings.Join(labels, "/")
			ps := ts.Paths[key]
			if ps == nil {
				ps = &PathStat{Labels: append([]string(nil), labels...)}
				ts.Paths[key] = ps
				distinctStr[key] = make(map[string]struct{})
				distinctNum[key] = make(map[float64]struct{})
			}
			ps.Count++
			val := strings.TrimSpace(doc.TextOf(id))
			ps.ValueBytes += int64(len(val))
			if _, seen := distinctStr[key][val]; !seen {
				distinctStr[key][val] = struct{}{}
				ps.DistinctStrings++
			}
			if f, ok := doc.NumericValue(id); ok {
				if ps.NumericCount == 0 {
					ps.Min, ps.Max = f, f
				} else {
					ps.Min = math.Min(ps.Min, f)
					ps.Max = math.Max(ps.Max, f)
				}
				ps.NumericCount++
				numSamples[key] = append(numSamples[key], f)
				if _, seen := distinctNum[key][f]; !seen {
					distinctNum[key][f] = struct{}{}
					ps.DistinctNums++
				}
			}
			for _, c := range n.Children {
				if doc.Node(c).Kind != xmltree.Text {
					walk(c)
				}
			}
			labels = labels[:len(labels)-1]
		}
		if doc.Root() != nil {
			walk(doc.Root().ID)
		}
		return true
	})

	ts.List = make([]*PathStat, 0, len(ts.Paths))
	for key, ps := range ts.Paths {
		if samples := numSamples[key]; len(samples) > 0 {
			ps.Hist = newHistogram(ps.Min, ps.Max, samples)
		}
		ts.List = append(ts.List, ps)
	}
	sort.Slice(ts.List, func(i, j int) bool { return ts.List[i].Path() < ts.List[j].Path() })
	return ts
}

// AvgNodesPerDoc returns the mean document size in nodes.
func (ts *TableStats) AvgNodesPerDoc() float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(ts.TotalNodes) / float64(ts.DocCount)
}

// PatternStats is the derived statistics of a (possibly virtual) index
// on a linear pattern — what the paper derives from RUNSTATS data for
// its virtual indexes: size, number of levels, entry counts, and the
// value distribution inputs of the cost model.
type PatternStats struct {
	// Entries is the number of index entries (nodes matched by the
	// pattern; for numeric indexes only numeric-valued nodes count).
	Entries int64
	// KeyBytes is the total encoded key size.
	KeyBytes int64
	// Distinct is the number of distinct keys (approximated by summing
	// per-path distinct counts; an upper bound).
	Distinct int64
	// Min and Max bound numeric keys (numeric indexes only).
	Min, Max float64
	// Hist is the merged numeric-value histogram (nil for string
	// patterns or when no numeric values matched).
	Hist *Histogram
	// SizeBytes is the estimated on-disk size of the index.
	SizeBytes int64
	// Levels is the estimated number of B+-tree levels.
	Levels int
}

// EntriesPerDoc returns the mean number of index entries per document.
func (ts *TableStats) EntriesPerDoc(p PatternStats) float64 {
	if ts.DocCount == 0 {
		return 0
	}
	return float64(p.Entries) / float64(ts.DocCount)
}

// numericKeyBytes is the encoded size of a double key (tag + 8 bytes),
// mirroring xindex's key encoding.
const numericKeyBytes = 9

// ForPattern aggregates the synopsis over all label paths matched by the
// linear pattern, producing the statistics a virtual index on that
// pattern would have. Results are memoized per (pattern, kind).
func (ts *TableStats) ForPattern(p xpath.Path, kind xpath.ValueKind) PatternStats {
	key := p.StripPreds().String() + "|" + kind.String()
	ts.mu.RLock()
	if ps, ok := ts.patternCache[key]; ok {
		ts.mu.RUnlock()
		return ps
	}
	ts.mu.RUnlock()

	var out PatternStats
	first := true
	for _, st := range ts.List {
		if !xpath.MatchesLabelPath(p, st.Labels) {
			continue
		}
		if kind == xpath.NumberVal {
			out.Entries += st.NumericCount
			out.KeyBytes += st.NumericCount * numericKeyBytes
			out.Distinct += st.DistinctNums
			if st.NumericCount > 0 {
				if first {
					out.Min, out.Max = st.Min, st.Max
					first = false
				} else {
					out.Min = math.Min(out.Min, st.Min)
					out.Max = math.Max(out.Max, st.Max)
				}
				out.Hist = out.Hist.merge(st.Hist)
			}
		} else {
			out.Entries += st.Count
			// +1 per key for the type tag byte used by the key encoding.
			out.KeyBytes += st.ValueBytes + st.Count
			out.Distinct += st.DistinctStrings
		}
	}
	out.SizeBytes = btree.EstimateSizeBytes(int(out.Entries), out.KeyBytes, 0)
	out.Levels = btree.EstimateLevels(int(out.Entries), 0)

	ts.mu.Lock()
	ts.patternCache[key] = out
	ts.mu.Unlock()
	return out
}

// Selectivity estimates the fraction of index entries satisfying a
// comparison against a literal, using a uniformity assumption over the
// distinct values (equality) or the numeric range (inequalities) — the
// standard System-R style estimators the DB2 cost model also applies.
func (p PatternStats) Selectivity(op xpath.CmpOp, lit xpath.Value) float64 {
	if p.Entries == 0 {
		return 0
	}
	distinct := float64(p.Distinct)
	if distinct < 1 {
		distinct = 1
	}
	eq := 1 / distinct
	switch op {
	case xpath.OpEq:
		return eq
	case xpath.OpNe:
		return clamp01(1 - eq)
	}
	// Range operators: use the histogram when available, falling back
	// to a min/max uniformity assumption.
	if lit.Kind == xpath.NumberVal {
		if p.Hist != nil && p.Hist.Total > 0 {
			switch op {
			case xpath.OpLt:
				return clamp01(p.Hist.FractionBelow(lit.Num, false))
			case xpath.OpLe:
				return clamp01(p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGt:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, true))
			case xpath.OpGe:
				return clamp01(1 - p.Hist.FractionBelow(lit.Num, false))
			}
		}
		span := p.Max - p.Min
		if span <= 0 {
			// Degenerate distribution: everything equal; a range either
			// takes all or nothing, assume half as a neutral default.
			return 0.5
		}
		var frac float64
		switch op {
		case xpath.OpLt, xpath.OpLe:
			frac = (lit.Num - p.Min) / span
		case xpath.OpGt, xpath.OpGe:
			frac = (p.Max - lit.Num) / span
		}
		return clamp01(frac)
	}
	// String ranges: no order statistics kept; use the classic 1/3.
	return 1.0 / 3.0
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
