package xstats

import (
	"fmt"
	"testing"

	"xixa/internal/storage"
	"xixa/internal/xmltree"
	"xixa/internal/xpath"
)

// buildTable creates n Security docs with Symbol "S<i>", Yield i%10,
// and a Sector drawn from 4 values.
func buildTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("SECURITY")
	sectors := []string{"Energy", "Tech", "Finance", "Retail"}
	for i := 0; i < n; i++ {
		d := xmltree.NewBuilder().
			Begin("Security").
			Leaf("Symbol", fmt.Sprintf("S%04d", i)).
			LeafFloat("Yield", float64(i%10)).
			Begin("SecInfo").Begin("StockInformation").
			Leaf("Sector", sectors[i%len(sectors)]).
			End().End().
			End().Document()
		tbl.Insert(d)
	}
	return tbl
}

func TestCollectCounts(t *testing.T) {
	tbl := buildTable(t, 100)
	ts := Collect(tbl)
	if ts.DocCount != 100 {
		t.Errorf("DocCount = %d", ts.DocCount)
	}
	if ts.TotalNodes != tbl.NodeCount() {
		t.Errorf("TotalNodes = %d, want %d", ts.TotalNodes, tbl.NodeCount())
	}
	sym := ts.Paths["/Security/Symbol"]
	if sym == nil || sym.Count != 100 || sym.DistinctStrings != 100 {
		t.Fatalf("Symbol stats = %+v", sym)
	}
	yield := ts.Paths["/Security/Yield"]
	if yield == nil || yield.Count != 100 {
		t.Fatalf("Yield stats = %+v", yield)
	}
	if yield.NumericCount != 100 || yield.DistinctNums != 10 {
		t.Errorf("Yield numeric stats: count=%d distinct=%d", yield.NumericCount, yield.DistinctNums)
	}
	if yield.Min != 0 || yield.Max != 9 {
		t.Errorf("Yield range = [%v,%v], want [0,9]", yield.Min, yield.Max)
	}
	sector := ts.Paths["/Security/SecInfo/StockInformation/Sector"]
	if sector == nil || sector.DistinctStrings != 4 {
		t.Fatalf("Sector stats = %+v", sector)
	}
	if ts.AvgNodesPerDoc() <= 0 {
		t.Error("AvgNodesPerDoc must be positive")
	}
}

func TestForPatternSpecific(t *testing.T) {
	ts := Collect(buildTable(t, 50))
	ps := ts.ForPattern(xpath.MustParse("/Security/Symbol"), xpath.StringVal)
	if ps.Entries != 50 {
		t.Errorf("Entries = %d, want 50", ps.Entries)
	}
	if ps.SizeBytes <= 0 || ps.Levels < 1 {
		t.Errorf("derived size/levels invalid: %+v", ps)
	}
	num := ts.ForPattern(xpath.MustParse("/Security/Yield"), xpath.NumberVal)
	if num.Entries != 50 || num.Min != 0 || num.Max != 9 {
		t.Errorf("numeric pattern stats = %+v", num)
	}
	// Numeric index over a string path has no entries.
	strAsNum := ts.ForPattern(xpath.MustParse("/Security/Symbol"), xpath.NumberVal)
	if strAsNum.Entries != 0 {
		t.Errorf("Symbol as numeric: entries = %d, want 0", strAsNum.Entries)
	}
}

func TestForPatternGeneralCoversMore(t *testing.T) {
	ts := Collect(buildTable(t, 50))
	specific := ts.ForPattern(xpath.MustParse("/Security/Symbol"), xpath.StringVal).Entries +
		ts.ForPattern(xpath.MustParse("/Security/SecInfo/*/Sector"), xpath.StringVal).Entries
	general := ts.ForPattern(xpath.MustParse("/Security//*"), xpath.StringVal)
	if general.Entries <= specific {
		t.Errorf("general //* entries (%d) must exceed the specifics it covers (%d)",
			general.Entries, specific)
	}
	// The paper's size premise: general indexes are at least as large as
	// the union of the specifics they cover.
	sizeSpecific := ts.ForPattern(xpath.MustParse("/Security/Symbol"), xpath.StringVal).SizeBytes
	if general.SizeBytes <= sizeSpecific {
		t.Errorf("general size %d not larger than one specific %d", general.SizeBytes, sizeSpecific)
	}
}

func TestForPatternWildcardDepth(t *testing.T) {
	ts := Collect(buildTable(t, 10))
	// /Security/SecInfo/*/Sector must match through StockInformation.
	ps := ts.ForPattern(xpath.MustParse("/Security/SecInfo/*/Sector"), xpath.StringVal)
	if ps.Entries != 10 {
		t.Errorf("wildcard pattern entries = %d, want 10", ps.Entries)
	}
	// /Security/*/Sector must NOT match (Sector is 2 levels below SecInfo).
	ps2 := ts.ForPattern(xpath.MustParse("/Security/*/Sector"), xpath.StringVal)
	if ps2.Entries != 0 {
		t.Errorf("/Security/*/Sector entries = %d, want 0", ps2.Entries)
	}
}

func TestSelectivityEquality(t *testing.T) {
	ts := Collect(buildTable(t, 100))
	sym := ts.ForPattern(xpath.MustParse("/Security/Symbol"), xpath.StringVal)
	sel := sym.Selectivity(xpath.OpEq, xpath.StringValue("S0001"))
	if sel <= 0 || sel > 0.02 {
		t.Errorf("eq selectivity on unique column = %v, want ~1/100", sel)
	}
	sector := ts.ForPattern(xpath.MustParse("/Security/SecInfo/StockInformation/Sector"), xpath.StringVal)
	sel2 := sector.Selectivity(xpath.OpEq, xpath.StringValue("Energy"))
	if sel2 < 0.2 || sel2 > 0.3 {
		t.Errorf("eq selectivity on 4-valued column = %v, want 0.25", sel2)
	}
}

func TestSelectivityNumericRange(t *testing.T) {
	ts := Collect(buildTable(t, 100))
	yield := ts.ForPattern(xpath.MustParse("/Security/Yield"), xpath.NumberVal)
	// Yield uniform over 0..9: > 4.5 should be about half.
	sel := yield.Selectivity(xpath.OpGt, xpath.NumberValue(4.5))
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("range selectivity = %v, want ~0.5", sel)
	}
	if got := yield.Selectivity(xpath.OpGt, xpath.NumberValue(100)); got != 0 {
		t.Errorf("selectivity beyond max = %v", got)
	}
	if got := yield.Selectivity(xpath.OpLt, xpath.NumberValue(100)); got != 1 {
		t.Errorf("selectivity covering all = %v", got)
	}
	ne := yield.Selectivity(xpath.OpNe, xpath.NumberValue(3))
	if ne < 0.8 || ne > 1 {
		t.Errorf("ne selectivity = %v", ne)
	}
}

func TestSelectivityEmptyPattern(t *testing.T) {
	ts := Collect(buildTable(t, 10))
	missing := ts.ForPattern(xpath.MustParse("/Nope"), xpath.StringVal)
	if missing.Entries != 0 {
		t.Fatalf("missing pattern entries = %d", missing.Entries)
	}
	if sel := missing.Selectivity(xpath.OpEq, xpath.StringValue("x")); sel != 0 {
		t.Errorf("selectivity on empty pattern = %v", sel)
	}
}

func TestPatternCacheStable(t *testing.T) {
	ts := Collect(buildTable(t, 20))
	p := xpath.MustParse("/Security//*")
	a := ts.ForPattern(p, xpath.StringVal)
	b := ts.ForPattern(p, xpath.StringVal)
	if a != b {
		t.Error("cached ForPattern results differ")
	}
}

func TestAttributeStats(t *testing.T) {
	tbl := storage.NewTable("T")
	for i := 0; i < 5; i++ {
		tbl.Insert(xmltree.MustParse(fmt.Sprintf(`<Order id="%d"><Qty>%d</Qty></Order>`, i, i*10)))
	}
	ts := Collect(tbl)
	attr := ts.Paths["/Order/@id"]
	if attr == nil || attr.Count != 5 || attr.DistinctStrings != 5 {
		t.Fatalf("@id stats = %+v", attr)
	}
	ps := ts.ForPattern(xpath.MustParse("/Order/@id"), xpath.StringVal)
	if ps.Entries != 5 {
		t.Errorf("@id pattern entries = %d", ps.Entries)
	}
	// Element wildcard must not absorb attributes.
	elems := ts.ForPattern(xpath.MustParse("/Order/*"), xpath.StringVal)
	if elems.Entries != 5 { // only Qty
		t.Errorf("/Order/* entries = %d, want 5", elems.Entries)
	}
}
