package workload

import (
	"fmt"
	"io"
	"sort"

	"xixa/internal/xquery"
)

// Summary aggregates a workload for reporting: statement-kind counts,
// frequency mass, and per-table breakdowns.
type Summary struct {
	Unique    int
	TotalFreq int
	ByKind    map[xquery.Kind]int
	ByTable   map[string]int
}

// Summarize computes the workload summary.
func (w *Workload) Summarize() Summary {
	s := Summary{
		ByKind:  make(map[xquery.Kind]int),
		ByTable: make(map[string]int),
	}
	for _, it := range w.Items {
		s.Unique++
		s.TotalFreq += it.Freq
		s.ByKind[it.Stmt.Kind]++
		s.ByTable[it.Stmt.Table]++
	}
	return s
}

// WriteSummary renders the summary as text.
func (w *Workload) WriteSummary(out io.Writer) {
	s := w.Summarize()
	fmt.Fprintf(out, "workload: %d unique statements, total frequency %d\n", s.Unique, s.TotalFreq)
	kinds := []xquery.Kind{xquery.Query, xquery.Insert, xquery.Delete, xquery.Update}
	for _, k := range kinds {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(out, "  %-7s %d\n", k.String()+":", n)
		}
	}
	tables := make([]string, 0, len(s.ByTable))
	for t := range s.ByTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(out, "  table %-10s %d statement(s)\n", t, s.ByTable[t])
	}
}

// Merge returns a new workload combining w and other; statements with
// identical text accumulate frequency.
func (w *Workload) Merge(other *Workload) *Workload {
	out := &Workload{}
	for _, it := range w.Items {
		out.Add(it.Stmt, it.Freq)
	}
	for _, it := range other.Items {
		out.Add(it.Stmt, it.Freq)
	}
	return out
}

// Scale multiplies every frequency by k (k <= 0 is treated as 1).
func (w *Workload) Scale(k int) {
	if k <= 0 {
		k = 1
	}
	for i := range w.Items {
		w.Items[i].Freq *= k
	}
}
