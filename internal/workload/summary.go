package workload

import (
	"fmt"
	"io"
	"sort"

	"xixa/internal/xquery"
)

// Summary aggregates a workload for reporting: statement-kind counts,
// frequency mass, and per-table breakdowns.
type Summary struct {
	Unique    int
	TotalFreq int
	ByKind    map[xquery.Kind]int
	ByTable   map[string]int
	// DecayEpoch is the decay epoch of the capture this summary was
	// taken from (zero for summaries of plain workloads). Frequencies
	// from different epochs are in different units; Capture.Merge
	// aligns them, and a merged Summary carries the maximum epoch of
	// its inputs as the unit the totals are expressed in.
	DecayEpoch int64
}

// Summarize computes the workload summary.
func (w *Workload) Summarize() Summary {
	s := Summary{
		ByKind:  make(map[xquery.Kind]int),
		ByTable: make(map[string]int),
	}
	for _, it := range w.Items {
		s.Unique++
		s.TotalFreq += it.Freq
		s.ByKind[it.Stmt.Kind]++
		s.ByTable[it.Stmt.Table]++
	}
	return s
}

// WriteSummary renders the summary as text.
func (w *Workload) WriteSummary(out io.Writer) {
	s := w.Summarize()
	fmt.Fprintf(out, "workload: %d unique statements, total frequency %d\n", s.Unique, s.TotalFreq)
	kinds := []xquery.Kind{xquery.Query, xquery.Insert, xquery.Delete, xquery.Update}
	for _, k := range kinds {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(out, "  %-7s %d\n", k.String()+":", n)
		}
	}
	tables := make([]string, 0, len(s.ByTable))
	for t := range s.ByTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(out, "  table %-10s %d statement(s)\n", t, s.ByTable[t])
	}
}

// SummarizeWeighted computes the summary with ByKind and ByTable
// weighted by statement frequency instead of counting unique
// statements — the form the serving layer reports, where a query
// executed 10,000 times should dominate a one-off.
func (w *Workload) SummarizeWeighted() Summary {
	s := Summary{
		ByKind:  make(map[xquery.Kind]int),
		ByTable: make(map[string]int),
	}
	for _, it := range w.Items {
		s.Unique++
		s.TotalFreq += it.Freq
		s.ByKind[it.Stmt.Kind] += it.Freq
		s.ByTable[it.Stmt.Table] += it.Freq
	}
	return s
}

// Merge folds another summary into this one, summing every field.
// Because the fields sum, merging per-session summaries weights each
// statement by its total frequency across sessions; the receiver maps
// are allocated if nil. A summary carries no statement identities, so
// the merged Unique is an upper bound: sessions that executed the same
// normalized statement each contribute to it. For exact uniques — and
// for decay-epoch-aligned frequencies when the inputs were decayed a
// different number of times — merge the Captures and summarize the
// result; a Summary holds only totals, so this method can record the
// maximum input epoch but cannot rescale what was already summed.
func (s *Summary) Merge(other Summary) {
	if other.DecayEpoch > s.DecayEpoch {
		s.DecayEpoch = other.DecayEpoch
	}
	if s.ByKind == nil {
		s.ByKind = make(map[xquery.Kind]int)
	}
	if s.ByTable == nil {
		s.ByTable = make(map[string]int)
	}
	s.Unique += other.Unique
	s.TotalFreq += other.TotalFreq
	for k, n := range other.ByKind {
		s.ByKind[k] += n
	}
	for t, n := range other.ByTable {
		s.ByTable[t] += n
	}
}

// Merge returns a new workload combining w and other. Statements are
// matched by their normalized form (xquery.Statement.NormalizedKey),
// not their raw text, and matching statements accumulate frequency: the
// same logical statement arriving from multiple sessions with different
// spellings merges into one frequency-weighted item instead of the last
// arrival's entry shadowing the others.
func (w *Workload) Merge(other *Workload) *Workload {
	out := &Workload{}
	byKey := make(map[string]int)
	add := func(it Item) {
		key := it.Stmt.NormalizedKey()
		if i, ok := byKey[key]; ok {
			out.Items[i].Freq += it.Freq
			return
		}
		byKey[key] = len(out.Items)
		out.Items = append(out.Items, it)
	}
	for _, it := range w.Items {
		add(it)
	}
	for _, it := range other.Items {
		add(it)
	}
	return out
}

// Scale multiplies every frequency by k (k <= 0 is treated as 1).
func (w *Workload) Scale(k int) {
	if k <= 0 {
		k = 1
	}
	for i := range w.Items {
		w.Items[i].Freq *= k
	}
}
