package workload

import (
	"math"
	"sort"
)

// CardObservation is one plan-node cardinality feedback row: the
// optimizer estimated Est entries/documents for Site and execution
// observed Actual. Op is the plan operator (IXSCAN, FILTER, FETCH,
// TBSCAN). The executor appends these after every traced statement; a
// future calibration pass joins them back to the estimator's
// statistics by Site.
type CardObservation struct {
	Op     string
	Site   string
	Est    int64
	Actual int64
}

// CardStats aggregates the feedback per (op, site) key: observation
// count, totals, and the mean q-error — max(est/actual, actual/est)
// with both sides floored at 1 — the standard symmetric measure of
// cardinality estimation error.
type CardStats struct {
	Op          string
	Site        string
	Count       int64
	TotalEst    int64
	TotalActual int64
	MeanQError  float64
}

// cardAgg is the running aggregate behind one CardStats row.
type cardAgg struct {
	count       int64
	totalEst    int64
	totalActual int64
	sumQError   float64
}

// qError is the symmetric ratio error of one observation.
func qError(est, actual int64) float64 {
	e, a := float64(est), float64(actual)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	return math.Max(e/a, a/e)
}

// maxCardSites bounds the per-(op, site) aggregate map; beyond it new
// sites are dropped (existing sites keep accumulating). The live site
// population is bounded by the plan cache in practice, so the cap is a
// safety net, not a working limit.
const maxCardSites = 4096

// ObserveCards folds a batch of plan-node cardinality observations
// into the capture's per-site aggregates.
func (c *Capture) ObserveCards(obs []CardObservation) {
	if len(obs) == 0 {
		return
	}
	c.cardMu.Lock()
	defer c.cardMu.Unlock()
	if c.cards == nil {
		c.cards = make(map[[2]string]*cardAgg)
	}
	for _, o := range obs {
		key := [2]string{o.Op, o.Site}
		agg, ok := c.cards[key]
		if !ok {
			if len(c.cards) >= maxCardSites {
				continue
			}
			agg = &cardAgg{}
			c.cards[key] = agg
		}
		agg.count++
		agg.totalEst += o.Est
		agg.totalActual += o.Actual
		agg.sumQError += qError(o.Est, o.Actual)
	}
}

// CardStats returns the per-(op, site) cardinality feedback aggregates
// sorted by op then site — deterministic for rendering and tests.
func (c *Capture) CardStats() []CardStats {
	c.cardMu.Lock()
	defer c.cardMu.Unlock()
	out := make([]CardStats, 0, len(c.cards))
	for key, agg := range c.cards {
		out = append(out, CardStats{
			Op:          key[0],
			Site:        key[1],
			Count:       agg.count,
			TotalEst:    agg.totalEst,
			TotalActual: agg.totalActual,
			MeanQError:  agg.sumQError / float64(agg.count),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Site < out[j].Site
	})
	return out
}
