package workload

import (
	"strings"
	"testing"

	"xixa/internal/xquery"
)

func TestSummarize(t *testing.T) {
	w := New()
	w.Add(xquery.MustParse(wq1), 10)
	w.Add(xquery.MustParse(wq2), 1)
	w.Add(xquery.MustParse(ins), 2)
	w.Add(xquery.MustParse(`delete from ORDERS where /Order[Status="cancelled"]`), 1)
	s := w.Summarize()
	if s.Unique != 4 || s.TotalFreq != 14 {
		t.Errorf("summary = %+v", s)
	}
	if s.ByKind[xquery.Query] != 2 || s.ByKind[xquery.Insert] != 1 || s.ByKind[xquery.Delete] != 1 {
		t.Errorf("by kind = %v", s.ByKind)
	}
	if s.ByTable["SECURITY"] != 3 || s.ByTable["ORDERS"] != 1 {
		t.Errorf("by table = %v", s.ByTable)
	}
}

func TestWriteSummary(t *testing.T) {
	w := New(xquery.MustParse(wq1), xquery.MustParse(ins))
	var sb strings.Builder
	w.WriteSummary(&sb)
	out := sb.String()
	for _, want := range []string{"2 unique statements", "query:", "insert:", "SECURITY"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Add(xquery.MustParse(wq1), 3)
	b := New()
	b.Add(xquery.MustParse(wq1), 2)
	b.Add(xquery.MustParse(wq2), 1)
	m := a.Merge(b)
	if m.Len() != 2 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if m.Items[0].Freq != 5 {
		t.Errorf("merged freq = %d, want 5", m.Items[0].Freq)
	}
	// Merge must not mutate the inputs.
	if a.Len() != 1 || a.Items[0].Freq != 3 {
		t.Error("Merge mutated its receiver")
	}
}

func TestScale(t *testing.T) {
	w := New()
	w.Add(xquery.MustParse(wq1), 2)
	w.Scale(5)
	if w.Items[0].Freq != 10 {
		t.Errorf("scaled freq = %d", w.Items[0].Freq)
	}
	w.Scale(0) // treated as 1: no change
	if w.Items[0].Freq != 10 {
		t.Errorf("Scale(0) changed freq to %d", w.Items[0].Freq)
	}
}
