package workload

import (
	"strings"
	"testing"

	"xixa/internal/xquery"
)

const (
	wq1 = `for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec`
	wq2 = `SECURITY('SDOC')/Security[Yield>4.5]`
	ins = `insert into SECURITY value <Security><Symbol>Z</Symbol></Security>`
)

func TestNewAndAdd(t *testing.T) {
	w := New(xquery.MustParse(wq1), xquery.MustParse(wq2))
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Re-adding the same text accumulates frequency.
	w.Add(xquery.MustParse(wq1), 9)
	if w.Len() != 2 {
		t.Errorf("Len after re-add = %d", w.Len())
	}
	if w.Items[0].Freq != 10 {
		t.Errorf("freq = %d, want 10", w.Items[0].Freq)
	}
	// Non-positive frequency defaults to 1.
	w.Add(xquery.MustParse(ins), 0)
	if w.Items[2].Freq != 1 {
		t.Errorf("zero freq stored as %d", w.Items[2].Freq)
	}
}

func TestPrefix(t *testing.T) {
	w := New(xquery.MustParse(wq1), xquery.MustParse(wq2), xquery.MustParse(ins))
	p := w.Prefix(2)
	if p.Len() != 2 || p.Items[0].Stmt.Raw != wq1 {
		t.Errorf("Prefix(2) = %d items", p.Len())
	}
	if w.Prefix(99).Len() != 3 {
		t.Error("Prefix beyond length must clamp")
	}
	// Prefix must be a copy: mutating it must not affect the original.
	p.Items[0].Freq = 777
	if w.Items[0].Freq == 777 {
		t.Error("Prefix shares backing storage with original")
	}
}

func TestQueriesAndHasUpdates(t *testing.T) {
	w := New(xquery.MustParse(wq1), xquery.MustParse(ins))
	if !w.HasUpdates() {
		t.Error("HasUpdates = false with an insert present")
	}
	q := w.Queries()
	if q.Len() != 1 || q.Items[0].Stmt.Kind != xquery.Query {
		t.Errorf("Queries() = %d items", q.Len())
	}
	if q.HasUpdates() {
		t.Error("query-only workload reports updates")
	}
}

func TestParseFile(t *testing.T) {
	text := `
# comment line

10| ` + wq1 + `
` + wq2 + `
 2| ` + ins + `
`
	w, err := ParseFile(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if w.Items[0].Freq != 10 || w.Items[1].Freq != 1 || w.Items[2].Freq != 2 {
		t.Errorf("freqs = %d %d %d", w.Items[0].Freq, w.Items[1].Freq, w.Items[2].Freq)
	}
	if w.Items[2].Stmt.Kind != xquery.Insert {
		t.Errorf("third kind = %v", w.Items[2].Stmt.Kind)
	}
}

func TestParseFileErrors(t *testing.T) {
	if _, err := ParseFile(strings.NewReader("not a statement")); err == nil {
		t.Error("bad statement accepted")
	}
}

func TestParseStatements(t *testing.T) {
	w, err := ParseStatements([]string{wq1, wq2})
	if err != nil {
		t.Fatalf("ParseStatements: %v", err)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d", w.Len())
	}
	if _, err := ParseStatements([]string{"garbage("}); err == nil {
		t.Error("bad statement accepted")
	}
}
