package workload

import (
	"testing"

	"xixa/internal/xquery"
)

// Two spellings of the same logical statement: identical normalized
// form, different raw text.
const (
	spellA = `for $s in SECURITY('SDOC')/Security where $s/Symbol = "A" return $s`
	spellB = `for $s in SECURITY('SDOC')/Security where  $s/Symbol="A"  return $s`
)

func TestNormalizedMergeWeightsByFrequency(t *testing.T) {
	a, b := xquery.MustParse(spellA), xquery.MustParse(spellB)
	if a.NormalizedKey() != b.NormalizedKey() {
		t.Fatalf("spellings normalize differently:\n%s\n%s", a.NormalizedKey(), b.NormalizedKey())
	}

	// Session 1 saw the statement 7 times, session 2 saw it 3 times
	// under another spelling. The merged workload must hold ONE item
	// with frequency 10 — not two items, and not the last session's 3.
	s1 := New()
	s1.Add(a, 7)
	s2 := New()
	s2.Add(b, 3)
	m := s1.Merge(s2)
	if m.Len() != 1 {
		t.Fatalf("merged len = %d, want 1", m.Len())
	}
	if m.Items[0].Freq != 10 {
		t.Fatalf("merged freq = %d, want 7+3=10", m.Items[0].Freq)
	}
}

func TestSummaryMergeSumsFrequencies(t *testing.T) {
	w1 := New()
	w1.Add(xquery.MustParse(spellA), 7)
	w2 := New()
	w2.Add(xquery.MustParse(spellB), 3)
	w2.Add(xquery.MustParse(ins), 2)

	s := w1.SummarizeWeighted()
	s.Merge(w2.SummarizeWeighted())
	if s.TotalFreq != 12 {
		t.Errorf("TotalFreq = %d, want 12", s.TotalFreq)
	}
	if s.ByKind[xquery.Query] != 10 || s.ByKind[xquery.Insert] != 2 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
	if s.ByTable["SECURITY"] != 12 {
		t.Errorf("ByTable = %v", s.ByTable)
	}
}

func TestCaptureAccumulatesAcrossSpellings(t *testing.T) {
	c := NewCapture(8)
	c.Observe(xquery.MustParse(spellA), 1)
	c.Observe(xquery.MustParse(spellB), 1)
	c.Observe(xquery.MustParse(spellA), 3)
	if c.Len() != 1 {
		t.Fatalf("capture holds %d entries, want 1", c.Len())
	}
	w := c.Workload()
	if w.Len() != 1 || w.Items[0].Freq != 5 {
		t.Fatalf("capture workload = %d items, freq %d; want 1 item freq 5", w.Len(), w.Items[0].Freq)
	}
}

func TestCaptureDecayAndEviction(t *testing.T) {
	c := NewCapture(2)
	hot := xquery.MustParse(spellA)
	cold := xquery.MustParse(wq2)
	c.Observe(hot, 10)
	c.Observe(cold, 1)

	// Decay until the cold statement falls below the floor.
	c.Decay(0.5, 1.0)
	if c.Len() != 1 {
		t.Fatalf("after decay capture holds %d entries, want 1 (cold evicted)", c.Len())
	}
	w := c.Workload()
	if w.Items[0].Stmt != hot {
		t.Fatal("decay evicted the hot statement")
	}
	if w.Items[0].Freq != 5 {
		t.Fatalf("decayed freq = %d, want 5", w.Items[0].Freq)
	}

	// Ring full: a new arrival evicts the lowest-weight entry.
	c.Observe(cold, 1)
	third := xquery.MustParse(`delete from ORDERS where /Order[Status="cancelled"]`)
	c.Observe(third, 2)
	if c.Len() != 2 {
		t.Fatalf("capture len = %d, want bounded at 2", c.Len())
	}
	if _, found := findStmt(c, cold); found {
		t.Fatal("lowest-weight entry survived eviction")
	}
	if _, found := findStmt(c, hot); !found {
		t.Fatal("hot entry evicted")
	}
}

func findStmt(c *Capture, stmt *xquery.Statement) (Item, bool) {
	for _, it := range c.Workload().Items {
		if it.Stmt.NormalizedKey() == stmt.NormalizedKey() {
			return it, true
		}
	}
	return Item{}, false
}

func TestCaptureMerge(t *testing.T) {
	global := NewCapture(16)
	session := NewCapture(16)
	session.Observe(xquery.MustParse(spellA), 4)
	session.Observe(xquery.MustParse(wq2), 1)
	global.Observe(xquery.MustParse(spellB), 6)
	global.Merge(session)
	if global.Len() != 2 {
		t.Fatalf("merged capture len = %d, want 2", global.Len())
	}
	it, ok := findStmt(global, xquery.MustParse(spellA))
	if !ok || it.Freq != 10 {
		t.Fatalf("merged weight = %+v, want freq 10", it)
	}
}

func TestCaptureExportImportRoundTrip(t *testing.T) {
	c := NewCapture(8)
	c.Observe(xquery.MustParse(spellA), 3)
	c.Observe(xquery.MustParse(spellB), 2) // same normalized entry
	c.Observe(xquery.MustParse(`delete from SECURITY where /Security[Symbol="B"]`), 1)
	c.Decay(0.5, 0.25)

	states := c.Export()
	if len(states) != 2 {
		t.Fatalf("exported %d entries, want 2", len(states))
	}
	if states[0].Weight != 2.5 || states[1].Weight != 0.5 {
		t.Fatalf("exported weights %v/%v, want 2.5/0.5 (decayed)", states[0].Weight, states[1].Weight)
	}

	c2 := NewCapture(8)
	if restored := c2.Import(states); restored != 2 {
		t.Fatalf("restored %d entries, want 2", restored)
	}
	got := c2.Export()
	for i := range states {
		if got[i] != states[i] {
			t.Fatalf("entry %d = %+v, want %+v (order and weights must survive)", i, got[i], states[i])
		}
	}
	// The restored capture feeds the advisor exactly like the original.
	w1, w2 := c.Workload(), c2.Workload()
	if w1.Len() != w2.Len() {
		t.Fatalf("workload lengths differ: %d vs %d", w1.Len(), w2.Len())
	}
	for i := range w1.Items {
		if w1.Items[i].Freq != w2.Items[i].Freq ||
			w1.Items[i].Stmt.NormalizedKey() != w2.Items[i].Stmt.NormalizedKey() {
			t.Fatalf("workload item %d differs after restore", i)
		}
	}
}

func TestCaptureImportSkipsUnparseable(t *testing.T) {
	c := NewCapture(4)
	restored := c.Import([]CaptureState{
		{Raw: "this is not a statement", Weight: 5},
		{Raw: spellA, Weight: 1},
	})
	if restored != 1 || c.Len() != 1 {
		t.Fatalf("restored=%d len=%d, want 1/1 (unparseable skipped)", restored, c.Len())
	}
}
