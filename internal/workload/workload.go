// Package workload models the training and test workloads presented to
// the advisor: a list of unique statements each with an occurrence
// frequency (paper §III: "The benefit of each unique statement in the
// workload is multiplied by its frequency of occurrence").
package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xixa/internal/xquery"
)

// Item is one unique statement and its frequency.
type Item struct {
	Stmt *xquery.Statement
	Freq int
}

// Workload is an ordered list of workload items.
type Workload struct {
	Items []Item
}

// New builds a workload from statements, all with frequency 1.
func New(stmts ...*xquery.Statement) *Workload {
	w := &Workload{}
	for _, s := range stmts {
		w.Add(s, 1)
	}
	return w
}

// Add appends a statement with a frequency. Adding the same statement
// text again accumulates frequency instead of duplicating the item.
func (w *Workload) Add(s *xquery.Statement, freq int) {
	if freq <= 0 {
		freq = 1
	}
	for i := range w.Items {
		if w.Items[i].Stmt.Raw == s.Raw {
			w.Items[i].Freq += freq
			return
		}
	}
	w.Items = append(w.Items, Item{Stmt: s, Freq: freq})
}

// Len returns the number of unique statements.
func (w *Workload) Len() int { return len(w.Items) }

// Prefix returns a new workload holding the first n items (the paper's
// "train on n queries" experiments, Fig. 4/5).
func (w *Workload) Prefix(n int) *Workload {
	if n > len(w.Items) {
		n = len(w.Items)
	}
	out := &Workload{Items: make([]Item, n)}
	copy(out.Items, w.Items[:n])
	return out
}

// Queries returns only the read-only statements.
func (w *Workload) Queries() *Workload {
	out := &Workload{}
	for _, it := range w.Items {
		if it.Stmt.Kind == xquery.Query {
			out.Items = append(out.Items, it)
		}
	}
	return out
}

// HasUpdates reports whether any statement modifies data.
func (w *Workload) HasUpdates() bool {
	for _, it := range w.Items {
		if it.Stmt.Kind != xquery.Query {
			return true
		}
	}
	return false
}

// ParseFile reads a workload file: one statement per line, optionally
// prefixed with "<freq>|". Blank lines and lines starting with '#' are
// skipped. Example:
//
//	# two hot queries and a trickle of inserts
//	10| for $s in SECURITY('SDOC')/Security where $s/Symbol = "A" return $s
//	 1| insert into SECURITY value <Security><Symbol>Z</Symbol></Security>
func ParseFile(r io.Reader) (*Workload, error) {
	w := &Workload{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		freq := 1
		if bar := strings.Index(line, "|"); bar > 0 {
			if f, err := strconv.Atoi(strings.TrimSpace(line[:bar])); err == nil {
				freq = f
				line = strings.TrimSpace(line[bar+1:])
			}
		}
		stmt, err := xquery.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		w.Add(stmt, freq)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return w, nil
}

// ParseStatements parses a slice of statement strings, frequency 1 each.
func ParseStatements(stmts []string) (*Workload, error) {
	w := &Workload{}
	for i, s := range stmts {
		stmt, err := xquery.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i+1, err)
		}
		w.Add(stmt, 1)
	}
	return w, nil
}
