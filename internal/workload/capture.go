package workload

import (
	"sort"
	"sync"

	"xixa/internal/xquery"
)

// Capture is a bounded live-workload sample: the serving layer's
// sessions feed every executed statement into it, and the autonomous
// tuning loop reads it back as the advisor's training workload — the
// paper's "representative workload the DBA assembles" (§VI-B) replaced
// by continuous capture inside the server.
//
// Statements are keyed by their normalized form
// (xquery.Statement.NormalizedKey), so the same logical statement
// arriving from many sessions — possibly with different raw spellings —
// accumulates one frequency-weighted entry. Weights decay exponentially
// (Decay, applied by the tuning loop once per round), so the capture
// tracks the live traffic mix instead of the whole history: a query
// that stopped arriving fades out and eventually frees its slot.
//
// When the ring is full, observing a new statement evicts the entry
// with the lowest weight (ties broken by oldest first-seen), keeping
// the hot statements and bounding memory no matter how diverse the
// traffic is.
//
// A Capture is safe for concurrent use.
type Capture struct {
	mu      sync.Mutex
	size    int
	entries map[string]*captureEntry
	order   []string // first-seen order, for deterministic output
	seq     int64

	// decays counts Decay rounds applied — the capture's decay epoch.
	// Two rings decayed a different number of times hold weights in
	// different units (each missed round leaves a ring's weights a
	// factor heavier); Merge aligns epochs before summing so a shard
	// that joined late, or tuned on a different cadence, doesn't skew
	// the merged frequency mix toward its less-decayed ring.
	decays      int64
	decayFactor float64

	// Cardinality feedback (cardinality.go) lives under its own mutex
	// so per-plan-node observations never contend with statement
	// observation on the query hot path.
	cardMu sync.Mutex
	cards  map[[2]string]*cardAgg
}

type captureEntry struct {
	stmt   *xquery.Statement
	weight float64
	seen   int64 // first-seen sequence, eviction tie-break
}

// DefaultCaptureSize bounds the ring when NewCapture is given 0.
const DefaultCaptureSize = 256

// NewCapture creates a capture ring holding at most size distinct
// normalized statements (0 selects DefaultCaptureSize).
func NewCapture(size int) *Capture {
	if size <= 0 {
		size = DefaultCaptureSize
	}
	return &Capture{size: size, entries: make(map[string]*captureEntry)}
}

// Observe records weight executions of stmt (weight <= 0 counts as 1).
func (c *Capture) Observe(stmt *xquery.Statement, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	key := stmt.NormalizedKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(key, stmt, weight)
}

func (c *Capture) observeLocked(key string, stmt *xquery.Statement, weight float64) {
	if e, ok := c.entries[key]; ok {
		e.weight += weight
		return
	}
	if len(c.entries) >= c.size {
		c.evictLocked()
	}
	c.seq++
	c.entries[key] = &captureEntry{stmt: stmt, weight: weight, seen: c.seq}
	c.order = append(c.order, key)
}

// evictLocked drops the lowest-weight (oldest on ties) entry.
func (c *Capture) evictLocked() {
	victim := -1
	for i, key := range c.order {
		e := c.entries[key]
		if victim < 0 {
			victim = i
			continue
		}
		v := c.entries[c.order[victim]]
		if e.weight < v.weight || (e.weight == v.weight && e.seen < v.seen) {
			victim = i
		}
	}
	if victim < 0 {
		return
	}
	delete(c.entries, c.order[victim])
	c.order = append(c.order[:victim], c.order[victim+1:]...)
}

// Merge folds another capture into this one, summing weights per
// normalized statement — the frequency-weighted merge the per-session
// staging path and the sharded stats plane use. (The naive raw-keyed
// merge either duplicated the statement per spelling or let the last
// session's entry win; summing by normalized key is what makes
// multi-session capture equal a single-session capture of the
// interleaved stream.)
//
// Captures at different decay epochs are aligned to the older (more
// decayed) epoch first: the younger side's weights are scaled by
// factor^(epoch difference) before summing, as if it had been present
// for every missed round. Without this, merging a ring decayed 10
// times with one decayed twice would let the younger ring's raw
// weights dominate even when its true traffic rate is identical.
func (c *Capture) Merge(other *Capture) {
	other.mu.Lock()
	type pair struct {
		key    string
		stmt   *xquery.Statement
		weight float64
	}
	pairs := make([]pair, 0, len(other.order))
	for _, key := range other.order {
		e := other.entries[key]
		pairs = append(pairs, pair{key: key, stmt: e.stmt, weight: e.weight})
	}
	otherDecays, otherFactor := other.decays, other.decayFactor
	other.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	scaleIn := 1.0
	if d := c.decays - otherDecays; d > 0 {
		// Incoming ring is younger: decay its weights the rounds it
		// missed, under its own decay regime (falling back to ours if
		// it never decayed and so never recorded a factor).
		scaleIn = alignScale(otherFactor, c.decayFactor, d)
	} else if d < 0 {
		// Receiver is younger: catch our existing entries up to the
		// incoming ring's epoch, then adopt it.
		s := alignScale(c.decayFactor, otherFactor, -d)
		for _, key := range c.order {
			c.entries[key].weight *= s
		}
		c.decays = otherDecays
		if c.decayFactor <= 0 || c.decayFactor >= 1 {
			c.decayFactor = otherFactor
		}
	}
	for _, p := range pairs {
		c.observeLocked(p.key, p.stmt, p.weight*scaleIn)
	}
}

// alignScale is the weight multiplier that advances a ring diff decay
// epochs: factor^diff, preferring the ring's own recorded factor and
// falling back to the peer's. A ring that has never decayed under a
// valid factor merges unscaled (factor 1) — there is no regime to
// extrapolate.
func alignScale(factor, fallback float64, diff int64) float64 {
	f := factor
	if f <= 0 || f >= 1 {
		f = fallback
	}
	if f <= 0 || f >= 1 {
		return 1
	}
	s := 1.0
	for ; diff > 0; diff-- {
		s *= f
	}
	return s
}

// Decay multiplies every weight by factor in (0,1) and drops entries
// whose weight fell below floor, freeing their slots. The tuning loop
// calls this once per round so old traffic fades at a rate tied to
// tuning cadence, not wall-clock.
func (c *Capture) Decay(factor, floor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.order[:0]
	for _, key := range c.order {
		e := c.entries[key]
		e.weight *= factor
		if e.weight < floor {
			delete(c.entries, key)
			continue
		}
		live = append(live, key)
	}
	c.order = live
	c.decays++
	c.decayFactor = factor
}

// DecayEpoch reports how many Decay rounds have been applied. Merge
// uses the epoch difference between two captures to bring their
// weights into the same units before summing.
func (c *Capture) DecayEpoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decays
}

// CaptureState is one entry of a capture's persistent form: the raw
// statement text (re-parsed on Import) and its decayed weight. The
// normalized key is not stored — it is a function of the parsed
// statement and is recomputed on restore.
type CaptureState struct {
	Raw    string
	Weight float64
}

// Export returns the capture's persistent form in first-seen order —
// the sidecar each checkpoint carries so a restarted daemon's tuner
// warm-starts from the checkpointed workload instead of relearning it.
func (c *Capture) Export() []CaptureState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CaptureState, 0, len(c.order))
	for _, key := range c.order {
		e := c.entries[key]
		out = append(out, CaptureState{Raw: e.stmt.Raw, Weight: e.weight})
	}
	return out
}

// Import folds an exported capture back in, re-parsing each raw
// statement and restoring its weight and first-seen order. Entries
// that no longer parse (a statement dialect change between runs) are
// skipped. It returns the number of entries restored.
func (c *Capture) Import(states []CaptureState) int {
	restored := 0
	for _, s := range states {
		stmt, err := xquery.Parse(s.Raw)
		if err != nil {
			continue
		}
		c.Observe(stmt, s.Weight)
		restored++
	}
	return restored
}

// Len returns the number of distinct normalized statements held.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Workload converts the capture into an advisor workload: statements in
// first-seen order, frequencies rounded from decayed weights (minimum
// 1). The returned workload is independent of later observations.
func (c *Capture) Workload() *Workload {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &Workload{}
	for _, key := range c.order {
		e := c.entries[key]
		freq := int(e.weight + 0.5)
		if freq < 1 {
			freq = 1
		}
		w.Items = append(w.Items, Item{Stmt: e.stmt, Freq: freq})
	}
	return w
}

// Summarize reports the capture as a frequency-weighted Summary,
// stamped with the capture's decay epoch so downstream merges can see
// whether the inputs were comparable.
func (c *Capture) Summarize() Summary {
	s := c.Workload().SummarizeWeighted()
	s.DecayEpoch = c.DecayEpoch()
	return s
}

// TopK returns the k heaviest captured statements with their rounded
// frequencies, heaviest first (first-seen order on ties).
func (c *Capture) TopK(k int) []Item {
	w := c.Workload()
	sort.SliceStable(w.Items, func(i, j int) bool { return w.Items[i].Freq > w.Items[j].Freq })
	if k < len(w.Items) {
		w.Items = w.Items[:k]
	}
	return w.Items
}
