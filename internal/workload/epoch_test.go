package workload

import (
	"math"
	"testing"

	"xixa/internal/xquery"
)

const (
	epochQ1 = `for $s in SECURITY('SDOC')/Security where $s/Symbol = "EP1" return $s`
	epochQ2 = `for $s in SECURITY('SDOC')/Security where $s/Symbol = "EP2" return $s`
	epochQ3 = `for $s in SECURITY('SDOC')/Security where $s/Symbol = "EP3" return $s`
)

func weightOf(t *testing.T, c *Capture, raw string) float64 {
	t.Helper()
	key := xquery.MustParse(raw).NormalizedKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		t.Fatalf("capture does not hold %q", raw)
	}
	return e.weight
}

// Two shards see the same traffic rate for their respective
// statements, but one shard's ring has been decayed one more round
// than the other's (it tuned on a faster cadence, or the other shard
// joined late). A naive weight sum would report the younger ring's
// statement as 2x hotter; the aligned merge must weight them equally.
func TestCaptureMergeAlignsStaggeredDecayEpochs(t *testing.T) {
	older := NewCapture(8)
	older.Observe(xquery.MustParse(epochQ1), 8)
	older.Decay(0.5, 0.01) // epoch 1: weight 4
	older.Decay(0.5, 0.01) // epoch 2: weight 2

	younger := NewCapture(8)
	younger.Observe(xquery.MustParse(epochQ2), 8)
	younger.Decay(0.5, 0.01) // epoch 1: weight 4, one round behind older

	if got := older.DecayEpoch(); got != 2 {
		t.Fatalf("older epoch = %d, want 2", got)
	}
	if got := younger.DecayEpoch(); got != 1 {
		t.Fatalf("younger epoch = %d, want 1", got)
	}

	older.Merge(younger)
	// Q2's weight 4 is one decay round behind; aligned to epoch 2 it
	// becomes 4 * 0.5 = 2, matching Q1 exactly.
	if w1, w2 := weightOf(t, older, epochQ1), weightOf(t, older, epochQ2); math.Abs(w1-w2) > 1e-12 {
		t.Fatalf("staggered merge skewed weights: q1=%v q2=%v", w1, w2)
	}
	if got := older.DecayEpoch(); got != 2 {
		t.Fatalf("merged epoch = %d, want 2", got)
	}
}

// Merging the older ring INTO the younger one must give the same
// relative weights: the receiver's entries are caught up to the
// incoming ring's epoch and the receiver adopts that epoch.
func TestCaptureMergeAlignsReceiverBehind(t *testing.T) {
	older := NewCapture(8)
	older.Observe(xquery.MustParse(epochQ1), 8)
	older.Decay(0.5, 0.01)
	older.Decay(0.5, 0.01) // epoch 2, weight 2

	younger := NewCapture(8)
	younger.Observe(xquery.MustParse(epochQ3), 8) // epoch 0, weight 8

	younger.Merge(older)
	if got := younger.DecayEpoch(); got != 2 {
		t.Fatalf("receiver did not adopt the older epoch: got %d, want 2", got)
	}
	// Q3 is two rounds behind: 8 * 0.5^2 = 2, equal to Q1's 2.
	if w1, w3 := weightOf(t, younger, epochQ1), weightOf(t, younger, epochQ3); math.Abs(w1-w3) > 1e-12 {
		t.Fatalf("receiver-behind merge skewed weights: q1=%v q3=%v", w1, w3)
	}

	// And with no decay regime recorded anywhere, same-epoch merges
	// still sum raw weights (no spurious scaling).
	a, b := NewCapture(8), NewCapture(8)
	a.Observe(xquery.MustParse(epochQ1), 3)
	b.Observe(xquery.MustParse(epochQ1), 4)
	a.Merge(b)
	if w := weightOf(t, a, epochQ1); math.Abs(w-7) > 1e-12 {
		t.Fatalf("same-epoch merge weight = %v, want 7", w)
	}
}

// The summary plane carries the epoch along: Summarize stamps it and
// Summary.Merge keeps the maximum of its inputs.
func TestSummaryCarriesDecayEpoch(t *testing.T) {
	c := NewCapture(8)
	c.Observe(xquery.MustParse(epochQ1), 8)
	c.Decay(0.7, 0.01)
	c.Decay(0.7, 0.01)
	c.Decay(0.7, 0.01)
	s := c.Summarize()
	if s.DecayEpoch != 3 {
		t.Fatalf("Summarize epoch = %d, want 3", s.DecayEpoch)
	}
	var merged Summary
	merged.Merge(Summary{DecayEpoch: 1})
	merged.Merge(s)
	merged.Merge(Summary{DecayEpoch: 2})
	if merged.DecayEpoch != 3 {
		t.Fatalf("merged summary epoch = %d, want 3", merged.DecayEpoch)
	}
}
