package server

// Point-in-time restore: an archived checkpoint stamped at or before
// the target LSN, plus the archived and live WAL records past its
// stamp, rebuild the exact database image at any committed LSN. The
// replay runs through the same Applier as crash recovery and
// replication, so "the image at LSN N" means the same thing
// everywhere: every bare record and every fully committed transaction
// frame through N, and nothing of a frame still open at N.

import (
	"fmt"
	"os"
	"path/filepath"

	"xixa/internal/persist"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xindex"
)

// RestoreResult is a point-in-time restore's outcome.
type RestoreResult struct {
	// DB and Defs are the restored image: the database and the index
	// definitions in force at the restore point.
	DB   *storage.Database
	Defs []xindex.Definition
	// LSN is the exact position restored to: the last committed record
	// at or before the requested target (a target landing inside a
	// transaction frame restores to just before the frame began).
	LSN uint64
	// BaseLSN is the stamp of the checkpoint the replay started from.
	BaseLSN uint64
	// Replayed is the number of record operations applied past the base.
	Replayed int
}

// RestoreToLSN rebuilds the database image at target from the
// durability directory walDir and its archive archiveDir (may equal
// the server's Config.ArchiveDir; "" consults only walDir — enough
// when no checkpoint has truncated the needed history yet). It picks
// the newest checkpoint stamped at or before target, then replays
// archived segments, sealed segments, and the active log through
// target. The directories are read without locking — restore runs
// against a stopped server's directory, or a copy.
func RestoreToLSN(walDir, archiveDir string, target uint64) (*RestoreResult, error) {
	res := &RestoreResult{}

	// Pick the restore base: the newest checkpoint stamped <= target.
	// The live checkpoint.db is preferred when eligible (least replay);
	// archived checkpoints reach further back in time.
	var db *storage.Database
	var defs []xindex.Definition
	base := uint64(0)
	baseStamp := uint64(0)
	haveBase := false
	chkPath := filepath.Join(walDir, checkpointFile)
	if _, err := os.Stat(chkPath); err == nil {
		cdb, cdefs, clsn, cstamp, lerr := persist.LoadCheckpointFile(chkPath)
		if lerr != nil {
			return nil, fmt.Errorf("server: restore: loading checkpoint: %w", lerr)
		}
		if clsn <= target {
			db, defs, base, baseStamp, haveBase = cdb, cdefs, clsn, cstamp, true
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if !haveBase && archiveDir != "" {
		archived, err := persist.ListArchivedCheckpoints(archiveDir)
		if err != nil {
			return nil, err
		}
		for i := len(archived) - 1; i >= 0; i-- {
			if archived[i].LSN <= target {
				cdb, cdefs, clsn, cstamp, lerr := persist.LoadCheckpointFile(archived[i].Path)
				if lerr != nil {
					return nil, fmt.Errorf("server: restore: loading archived checkpoint %s: %w", archived[i].Path, lerr)
				}
				db, defs, base, baseStamp, haveBase = cdb, cdefs, clsn, cstamp, true
				break
			}
		}
	}
	if !haveBase {
		// No checkpoint at or before target: only valid when the WAL
		// history reaches back to genesis (the coverage check below
		// catches the gap if it does not).
		db = storage.NewDatabase()
	}
	res.BaseLSN = base

	// Gather the record history: archived segments, sealed segments
	// still in walDir, and the active log file, in LSN order. The
	// applier's gap check turns missing history into a loud error.
	var files []wal.SegmentInfo
	if archiveDir != "" {
		arch, err := wal.ListSegmentFiles(archiveDir, walLogFile)
		if err != nil {
			return nil, err
		}
		files = append(files, arch...)
	}
	sealed, err := wal.ListSegmentFiles(walDir, walLogFile)
	if err != nil {
		return nil, err
	}
	files = append(files, sealed...)

	if haveBase {
		db.AdvanceStamp(baseStamp)
	}
	applier := NewApplier(db, defs, base, baseStamp)
	applyFile := func(recs []wal.Record) error {
		for i := range recs {
			if recs[i].LSN > target {
				return nil
			}
			if err := applier.Apply(recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sf := range files {
		if sf.End <= base || applier.AppliedLSN() >= target {
			continue
		}
		if sf.Start > target {
			break
		}
		_, recs, torn, rerr := wal.ReadSegment(sf.Path)
		if rerr != nil {
			return nil, fmt.Errorf("server: restore: segment %s: %w", sf.Path, rerr)
		}
		if err := applyFile(recs); err != nil {
			return nil, err
		}
		if torn && applier.AppliedLSN() < target {
			return nil, fmt.Errorf("server: restore: segment %s is torn before target %d", sf.Path, target)
		}
	}
	if applier.AppliedLSN() < target {
		activePath := filepath.Join(walDir, walLogFile)
		if _, err := os.Stat(activePath); err == nil {
			_, recs, _, rerr := wal.ReadSegment(activePath)
			if rerr != nil {
				return nil, fmt.Errorf("server: restore: active log: %w", rerr)
			}
			if err := applyFile(recs); err != nil {
				return nil, err
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	if applier.AppliedLSN() < target {
		return nil, fmt.Errorf("server: restore: history ends at LSN %d, short of target %d", applier.AppliedLSN(), target)
	}
	if err := applier.Flush(); err != nil {
		return nil, err
	}

	res.DB = db
	res.Defs = applier.Defs()
	res.LSN = applier.CommittedLSN()
	res.Replayed = applier.OpsApplied()
	return res, nil
}
