package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xixa/internal/persist"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xquery"
)

// durableCfg is the recovery tests' base config: SyncOff keeps the
// tests fast — an in-process "crash" (abandoning the server without
// Close or checkpoint) only needs commits flushed to the OS, which
// every policy guarantees.
func durableCfg(dir string) Config {
	return Config{WALDir: dir, SyncPolicy: wal.SyncOff, BuildAfter: 1, DropAfter: 10}
}

func bootstrapFixture(n int) func() (*storage.Database, error) {
	return func() (*storage.Database, error) { return fixtureDB(n), nil }
}

// dbBytes serializes a server's database and catalog — the
// bit-identity oracle of the recovery tests.
func dbBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.SaveDatabase(&buf, s.DB(), s.Catalog().Definitions()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustExec(t *testing.T, sess *Session, raw string) {
	t.Helper()
	if _, err := sess.Execute(raw); err != nil {
		t.Fatalf("execute %q: %v", raw, err)
	}
}

func insertStmt(sym string, yield int) string {
	return fmt.Sprintf(`insert into SECURITY value <Security><Symbol>%s</Symbol><Yield>%d.5</Yield><SecInfo><StockInformation><Sector>Recovered</Sector></StockInformation></SecInfo></Security>`, sym, yield%9)
}

// TestRecoverCrashMidBurst is the durability acceptance test: a server
// killed mid-burst — no graceful snapshot, the WAL is all that
// survives — recovers via checkpoint + tail replay with the database,
// the index catalog, and every query's results bit-identical to the
// committed pre-crash state.
func TestRecoverCrashMidBurst(t *testing.T) {
	dir := t.TempDir()
	srv, info, err := Recover(durableCfg(dir), bootstrapFixture(300))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Bootstrapped {
		t.Fatalf("fresh dir not bootstrapped: %+v", info)
	}

	// Queries to capture a workload, then one tuning round so the
	// catalog holds online-built indexes whose create records are in
	// the WAL (BuildAfter=1 materializes immediately).
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustExec(t, sess, pointQuery(i%300))
	}
	rep, err := srv.TuneOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Built) == 0 {
		t.Fatal("tuning round built no indexes; the index-create replay path is untested")
	}

	// Concurrent mutation burst: 4 writers, inserts/updates/deletes.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws, err := srv.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer ws.Close()
			for i := 0; i < 15; i++ {
				sym := fmt.Sprintf("CR%d%03d", w, i)
				for _, raw := range []string{
					insertStmt(sym, i),
					fmt.Sprintf(`update SECURITY set Yield = %d.75 where /Security[Symbol="%s"]`, i%7, sym),
				} {
					if _, err := ws.Execute(raw); err != nil && err != ErrOverloaded {
						errCh <- err
						return
					}
				}
				if i%3 == 0 {
					if _, err := ws.Execute(fmt.Sprintf(`delete from SECURITY where /Security[Symbol="%s"]`, sym)); err != nil && err != ErrOverloaded {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The committed pre-crash state, and each query's results on it.
	want := dbBytes(t, srv)
	wantDefs := srv.Catalog().Definitions()
	queries := []string{pointQuery(7), pointQuery(123), sectorQuery("Tech"), sectorQuery("Recovered")}
	wantRefs := make([]string, len(queries))
	for i, q := range queries {
		res, err := sess.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		wantRefs[i] = refsKey(res.Refs)
	}
	// Crash: no Close, no snapshot — the server is simply abandoned.

	srv2, info2, err := Recover(durableCfg(dir), bootstrapFixture(300))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if info2.Bootstrapped {
		t.Fatal("recovery bootstrapped instead of replaying")
	}
	if info2.Replayed == 0 {
		t.Fatal("recovery replayed nothing; the burst was lost")
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatalf("recovered database not bit-identical: %d vs %d bytes", len(got), len(want))
	}
	gotDefs := srv2.Catalog().Definitions()
	if len(gotDefs) != len(wantDefs) {
		t.Fatalf("recovered catalog has %d defs, want %d", len(gotDefs), len(wantDefs))
	}
	for i := range wantDefs {
		if gotDefs[i].Key() != wantDefs[i].Key() {
			t.Fatalf("recovered def %d = %s, want %s", i, gotDefs[i], wantDefs[i])
		}
	}
	if info2.IndexesRebuilt == 0 {
		t.Fatal("no indexes rebuilt on recovery")
	}
	sess2, err := srv2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := sess2.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if refsKey(res.Refs) != wantRefs[i] {
			t.Fatalf("query %d results differ after recovery", i)
		}
	}
}

// TestRecoverTornFinalRecord tears the WAL's final record (the
// canonical crash-mid-append wreckage): recovery must keep every
// statement before the tear and the daemon must keep accepting
// commits afterwards.
func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(50))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("TORN%03d", i), i))
	}
	want := dbBytes(t, srv) // state before the final, soon-torn insert
	mustExec(t, sess, insertStmt("TORN999", 3))
	// Crash, then tear the last record: chop bytes off the log tail.
	walPath := filepath.Join(dir, walLogFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if !info.Torn {
		t.Fatal("torn tail not reported")
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatal("recovery past the tear is not bit-identical to the pre-tear state")
	}
	// The log heals: new commits append and survive the next recovery.
	sess2, err := srv2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess2, insertStmt("HEAL001", 1))
	wantHealed := dbBytes(t, srv2)

	srv3, info3, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if info3.Torn {
		t.Fatal("healed log still reports a tear")
	}
	if got := dbBytes(t, srv3); !bytes.Equal(got, wantHealed) {
		t.Fatal("post-heal recovery not bit-identical")
	}
}

// TestRecoverUpdatePairing exercises the atomic replace record: an
// update must recover into the same insertion-order position, or the
// serialized database diverges.
func TestRecoverUpdatePairing(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(20))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Update documents in the middle of the table: naive
	// delete+reinsert replay would move them to the end.
	for _, sym := range []string{"S00003", "S00007", "S00011"} {
		mustExec(t, sess, fmt.Sprintf(`update SECURITY set Yield = 9.25 where /Security[Symbol="%s"]`, sym))
	}
	want := dbBytes(t, srv)

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if info.Replayed == 0 {
		t.Fatal("updates not replayed")
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatal("update replay does not preserve document positions")
	}
}

// TestCheckpointBoundsReplayAndWarmStartsCapture: a checkpoint
// truncates the log, stamps the snapshot with its LSN, and carries the
// capture sidecar; recovery replays only the tail and warm-starts the
// tuner's workload.
func TestCheckpointBoundsReplayAndWarmStartsCapture(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(100))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("PRE%03d", i), i))
		mustExec(t, sess, pointQuery(i))
	}
	preLSN := srv.WAL().LastLSN()
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := srv.WAL().SizeBytes(); got > 64 {
		t.Fatalf("WAL not truncated by checkpoint: %d bytes", got)
	}
	wantCapture := srv.Capture().Export()
	if len(wantCapture) == 0 {
		t.Fatal("no captured workload to persist")
	}
	// Tail past the checkpoint.
	for i := 0; i < 5; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("POST%02d", i), i))
	}
	want := dbBytes(t, srv)

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if info.CheckpointLSN != preLSN {
		t.Fatalf("checkpoint LSN = %d, want %d", info.CheckpointLSN, preLSN)
	}
	if info.Replayed != 5 {
		t.Fatalf("replayed %d records, want exactly the 5-insert tail", info.Replayed)
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatal("checkpoint+tail recovery not bit-identical")
	}
	if info.CaptureRestored != len(wantCapture) {
		t.Fatalf("capture restored %d entries, want %d", info.CaptureRestored, len(wantCapture))
	}
	gotCapture := srv2.Capture().Export()
	if len(gotCapture) != len(wantCapture) {
		t.Fatalf("capture export lengths differ: %d vs %d", len(gotCapture), len(wantCapture))
	}
	for i := range wantCapture {
		if gotCapture[i] != wantCapture[i] {
			t.Fatalf("capture entry %d = %+v, want %+v", i, gotCapture[i], wantCapture[i])
		}
	}
}

// TestAutoCheckpointFromTuneLoop: the autonomous loop's ticker writes
// a checkpoint once the WAL passes the size threshold.
func TestAutoCheckpointFromTuneLoop(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.TuneInterval = 10 * time.Millisecond
	cfg.CheckpointBytes = 1 // every round checkpoints
	srv, _, err := Recover(cfg, bootstrapFixture(50))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	checkpointed := make(chan struct{})
	var once sync.Once
	srv.StartAutoTune(func(rep *TuneReport, err error) {
		if err != nil {
			t.Errorf("tune: %v", err)
			return
		}
		if rep.Checkpointed {
			once.Do(func() { close(checkpointed) })
		}
	})
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("AUTO%04d", i), i))
		select {
		case <-checkpointed:
			return
		case <-deadline:
			t.Fatal("no automatic checkpoint within 5s")
		default:
		}
	}
}

// TestGroupCommitUnderServer runs the full stack under SyncAlways with
// concurrent writers — the group-commit path — and checks recovery.
func TestGroupCommitUnderServer(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.SyncPolicy = wal.SyncAlways
	srv, _, err := Recover(cfg, bootstrapFixture(50))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws, err := srv.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer ws.Close()
			for i := 0; i < 10; i++ {
				if _, err := ws.Execute(insertStmt(fmt.Sprintf("GC%d%03d", w, i), i)); err != nil && err != ErrOverloaded {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := dbBytes(t, srv)

	srv2, _, err := Recover(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatal("group-committed burst not bit-identical after recovery")
	}
}

// TestWALCommitSurfacesFailure: once the log's backing file fails, a
// mutating statement must report the commit error instead of claiming
// durability.
func TestWALCommitSurfacesFailure(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.SyncPolicy = wal.SyncAlways
	srv, _, err := Recover(cfg, bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Closing the WAL out from under the server stands in for a dead
	// disk: appends and commits must fail loudly.
	srv.WAL().Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(insertStmt("FAIL001", 1)); err == nil {
		t.Fatal("mutation claimed success with a dead WAL")
	}
	// Queries are unaffected: durability failures must not take down
	// the read path.
	if _, err := sess.Execute(pointQuery(1)); err != nil {
		t.Fatalf("query failed after WAL death: %v", err)
	}
}

// TestRecoverStmtParity replays a serial statement tape through a
// durable server with a mid-tape crash+recover, and through a plain
// in-memory server, and demands identical final databases — the
// "recovered equals never-crashed" framing of the acceptance
// criteria.
func TestRecoverStmtParity(t *testing.T) {
	tape := make([]string, 0, 60)
	for i := 0; i < 20; i++ {
		sym := fmt.Sprintf("TP%04d", i)
		tape = append(tape, insertStmt(sym, i))
		if i%2 == 0 {
			tape = append(tape, fmt.Sprintf(`update SECURITY set Yield = %d.25 where /Security[Symbol="%s"]`, i%5, sym))
		}
		if i%5 == 3 {
			tape = append(tape, fmt.Sprintf(`delete from SECURITY where /Security[Symbol="%s"]`, sym))
		}
	}

	// Reference: never-crashed in-memory run.
	ref := New(fixtureDB(30), Config{})
	defer ref.Close()
	refSess, err := ref.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range tape {
		mustExec(t, refSess, raw)
	}
	var refBuf bytes.Buffer
	if err := persist.SaveDatabase(&refBuf, ref.DB(), nil); err != nil {
		t.Fatal(err)
	}

	// Durable run with a crash+recover in the middle of the tape.
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(30))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	half := len(tape) / 2
	for _, raw := range tape[:half] {
		mustExec(t, sess, raw)
	}
	// Crash (abandon), recover, finish the tape.
	srv2, _, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	sess2, err := srv2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range tape[half:] {
		mustExec(t, sess2, raw)
	}
	var gotBuf bytes.Buffer
	if err := persist.SaveDatabase(&gotBuf, srv2.DB(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), refBuf.Bytes()) {
		t.Fatal("crashed+recovered run diverges from the never-crashed reference")
	}
}

// TestStatementsParseable guards the test fixtures themselves.
func TestRecoveryFixtureStatementsParse(t *testing.T) {
	for _, raw := range []string{
		insertStmt("X", 1),
		`update SECURITY set Yield = 1.25 where /Security[Symbol="X"]`,
		`delete from SECURITY where /Security[Symbol="X"]`,
	} {
		if _, err := xquery.Parse(raw); err != nil {
			t.Fatalf("fixture %q: %v", raw, err)
		}
	}
}

// TestRecoverTornReplaceKeepsPreImage tears the WAL so an update's
// RecDocReplace record is the torn one: recovery must keep the
// committed pre-image — logging the update as remove+insert pairs
// would instead delete the document, a state that never existed.
func TestRecoverTornReplaceKeepsPreImage(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want := dbBytes(t, srv) // the committed state: pre-update
	mustExec(t, sess, `update SECURITY set Yield = 8.75 where /Security[Symbol="S00004"]`)
	walPath := filepath.Join(dir, walLogFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear into the final (replace) record.
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if !info.Torn {
		t.Fatal("tear not detected")
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatal("torn replace did not recover to the committed pre-image")
	}
	tbl, err := srv2.DB().Table("SECURITY")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(4); !ok {
		t.Fatal("document deleted by a torn update — the replace record was not atomic")
	}
}

// TestRecoverRefusesMissingCheckpoint: a WAL whose startLSN proves a
// checkpoint existed must not recover without it.
func TestRecoverRefusesMissingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, insertStmt("CHK001", 1))
	if err := srv.Checkpoint(); err != nil { // advances the WAL's startLSN
		t.Fatal(err)
	}
	srv.Close()
	if err := os.Remove(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(durableCfg(dir), nil); err == nil {
		t.Fatal("recovery without the checkpoint the WAL depends on must fail loudly")
	}
}

// TestRecoverLostWALSequencesPastCheckpoint: if wal.log is lost but
// the checkpoint survives, recovery must succeed AND must never
// re-issue LSNs the checkpoint covers — otherwise commits after the
// restart would be silently skipped by the NEXT recovery.
func TestRecoverLostWALSequencesPastCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("SEQ%03d", i), i))
	}
	if err := srv.Checkpoint(); err != nil { // stamped LSN > 0
		t.Fatal(err)
	}
	srv.Close()
	if err := os.Remove(filepath.Join(dir, walLogFile)); err != nil {
		t.Fatal(err)
	}

	srv2, _, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatalf("recovery with intact checkpoint but lost WAL must succeed: %v", err)
	}
	sess2, err := srv2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess2, insertStmt("SEQNEW", 1))
	want := dbBytes(t, srv2)
	// Crash again: the fresh commit must survive the next recovery,
	// which it only does if its LSN was issued past the checkpoint's.
	srv3, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if info.Replayed != 1 {
		t.Fatalf("replayed %d records, want the 1 post-restart insert", info.Replayed)
	}
	if got := dbBytes(t, srv3); !bytes.Equal(got, want) {
		t.Fatal("commit after WAL loss was skipped by the next recovery")
	}
}

// TestRecoverCorruptSidecarDegrades: a corrupt capture sidecar must
// not block recovery — it is a warm-start cache, not data.
func TestRecoverCorruptSidecarDegrades(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, pointQuery(1))
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	capPath := filepath.Join(dir, captureFile)
	raw, err := os.ReadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(capPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatalf("corrupt sidecar blocked recovery: %v", err)
	}
	defer srv2.Close()
	if info.CaptureError == nil {
		t.Fatal("corrupt sidecar not reported")
	}
	if info.CaptureRestored != 0 || srv2.Capture().Len() != 0 {
		t.Fatal("corrupt sidecar partially restored")
	}
}

// TestRecoverRefusesMissingCheckpointAtStartZero: the refusal must
// also fire before the first explicit checkpoint advances startLSN —
// any WAL records at all prove the (initial) checkpoint existed.
func TestRecoverRefusesMissingCheckpointAtStartZero(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, insertStmt("CHK002", 1)) // records at startLSN 0
	srv.Close()
	if err := os.Remove(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(durableCfg(dir), bootstrapFixture(10)); err == nil {
		t.Fatal("recovery with WAL records but no checkpoint must fail loudly")
	}
}
