package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xixa/internal/storage"
	"xixa/internal/xindex"
	"xixa/internal/xmltree"
)

var sectors = []string{"Energy", "Tech", "Finance", "Retail"}

func secDoc(symbol, sector string, yield float64) *xmltree.Document {
	return xmltree.NewBuilder().
		Begin("Security").
		Leaf("Symbol", symbol).
		LeafFloat("Yield", yield).
		Begin("SecInfo").Begin("StockInformation").
		Leaf("Sector", sector).
		End().End().
		End().Document()
}

// fixtureDB builds a deterministic SECURITY table of n stable documents
// whose symbols and sectors the test queries target; the mutator storm
// uses disjoint symbols and a disjoint sector, so query results are
// invariant under any interleaving with the storm.
func fixtureDB(n int) *storage.Database {
	db := storage.NewDatabase()
	tbl := db.MustCreateTable("SECURITY")
	for i := 0; i < n; i++ {
		tbl.Insert(secDoc(fmt.Sprintf("S%05d", i), sectors[i%len(sectors)], float64(i%100)/10))
	}
	return db
}

func pointQuery(i int) string {
	return fmt.Sprintf(`for $s in SECURITY('SDOC')/Security where $s/Symbol = "S%05d" return $s`, i)
}

func sectorQuery(sector string) string {
	return fmt.Sprintf(`for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/Sector = "%s" return $s`, sector)
}

// clientScript is the deterministic statement sequence of one client.
func clientScript(client, count int) []string {
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if i%5 == 4 {
			out = append(out, sectorQuery(sectors[(client+i)%len(sectors)]))
		} else {
			out = append(out, pointQuery((client*37+i*11)%300))
		}
	}
	return out
}

func refsKey(refs []xindex.Ref) string {
	var b []byte
	for _, r := range refs {
		b = fmt.Appendf(b, "%d:%d,", r.Doc, r.Node)
	}
	return string(b)
}

// TestServeWhileTuneE2E is the subsystem's acceptance test: 8
// concurrent clients issue queries while a mutator streams
// inserts/updates/deletes through the same server; the tuning loop
// materializes at least one index online mid-traffic; post-swap plans
// use it; and every query's results are bit-identical to a serial
// replay of the same statement sequence on an untuned server.
func TestServeWhileTuneE2E(t *testing.T) {
	const (
		clients   = 8
		perClient = 25
		stable    = 300
	)
	srv := New(fixtureDB(stable), Config{BuildAfter: 2, DropAfter: 3})
	defer srv.Close()

	// Mutator: streams inserts, copy-on-write updates, and deletes of
	// its own STORM documents for the whole test. Its sector and
	// symbols are disjoint from everything the clients query.
	stopStorm := make(chan struct{})
	stormDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession()
		if err != nil {
			stormDone <- err
			return
		}
		defer sess.Close()
		exec := func(raw string) bool {
			if _, err := sess.Execute(raw); err != nil && err != ErrOverloaded {
				stormDone <- fmt.Errorf("storm %q: %w", raw, err)
				return false
			}
			return true
		}
		live := 0
		for i := 0; ; i++ {
			select {
			case <-stopStorm:
				// Drain: delete every storm document still present.
				for j := live - 1; j >= 0; j-- {
					if !exec(fmt.Sprintf(`delete from SECURITY where /Security[Symbol="STORM%05d"]`, j)) {
						return
					}
				}
				stormDone <- nil
				return
			default:
			}
			if !exec(fmt.Sprintf(`insert into SECURITY value <Security><Symbol>STORM%05d</Symbol><Yield>%d.5</Yield><SecInfo><StockInformation><Sector>Storm</Sector></StockInformation></SecInfo></Security>`, i, 900+i%50)) {
				return
			}
			live = i + 1
			if !exec(fmt.Sprintf(`update SECURITY set Yield = %d.25 where /Security[Symbol="STORM%05d"]`, 950+i%20, i)) {
				return
			}
			if i >= 8 {
				if !exec(fmt.Sprintf(`delete from SECURITY where /Security[Symbol="STORM%05d"]`, i-8)) {
					return
				}
			}
		}
	}()

	runPhase := func(results [][]string) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				sess, err := srv.NewSession()
				if err != nil {
					errs <- err
					return
				}
				defer sess.Close()
				for _, raw := range clientScript(c, perClient) {
					res, err := sess.Execute(raw)
					for err == ErrOverloaded {
						res, err = sess.Execute(raw)
					}
					if err != nil {
						errs <- fmt.Errorf("client %d %q: %w", c, raw, err)
						return
					}
					results[c] = append(results[c], refsKey(res.Refs))
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// Phase 1: concurrent queries fill the capture ring while the storm
	// runs.
	phase1 := make([][]string, clients)
	runPhase(phase1)

	// Tuning rounds mid-traffic: with BuildAfter=2 the first round only
	// accumulates streak, the second materializes. The storm keeps
	// mutating the table during both, so the builds are genuinely
	// online.
	var built int
	for round := 0; round < 4 && built == 0; round++ {
		rep, err := srv.TuneOnce()
		if err != nil {
			t.Fatal(err)
		}
		built += len(rep.Built)
		if round == 0 && len(rep.Built) > 0 {
			t.Fatal("hysteresis violated: built on first round with BuildAfter=2")
		}
	}
	if built == 0 {
		t.Fatal("tuning loop materialized no index")
	}
	defs := srv.Catalog().Definitions()
	if len(defs) == 0 {
		t.Fatal("catalog empty after tuning")
	}
	for _, def := range defs {
		idx, ok := srv.Catalog().Get(def)
		if !ok || !idx.SelfMaintained() {
			t.Fatalf("index %s not online-built", def)
		}
	}

	// Post-swap plans use the materialized indexes.
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sess.Explain(pointQuery(42))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() {
		t.Fatalf("post-swap plan does not use indexes: %s", plan)
	}
	sess.Close()

	// Phase 2: the same scripts again, now running index plans while
	// the storm still mutates the table.
	phase2 := make([][]string, clients)
	runPhase(phase2)

	close(stopStorm)
	if err := <-stormDone; err != nil {
		t.Fatal(err)
	}

	// The storm cleaned up after itself: only stable documents remain.
	tbl, err := srv.DB().Table("SECURITY")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.DocCount() != stable {
		t.Fatalf("table holds %d docs after storm drain, want %d", tbl.DocCount(), stable)
	}

	// Every materialized online index must now equal a cold build bit
	// for bit.
	for _, def := range srv.Catalog().Definitions() {
		online, _ := srv.Catalog().Get(def)
		cold, err := xindex.Build(tbl, def)
		if err != nil {
			t.Fatal(err)
		}
		var got, want []string
		online.Walk(func(k []byte, r xindex.Ref) bool {
			got = append(got, fmt.Sprintf("%x|%d|%d", k, r.Doc, r.Node))
			return true
		})
		cold.Walk(func(k []byte, r xindex.Ref) bool {
			want = append(want, fmt.Sprintf("%x|%d|%d", k, r.Doc, r.Node))
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("online %s: %d entries, cold build %d", def, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("online %s entry %d: %s != %s", def, i, got[i], want[i])
			}
		}
	}

	// Serial replay: a fresh, untuned server executes the same scripts
	// one statement at a time; every result must match both concurrent
	// phases bit for bit.
	replaySrv := New(fixtureDB(stable), Config{})
	defer replaySrv.Close()
	rsess, err := replaySrv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close()
	for c := 0; c < clients; c++ {
		for i, raw := range clientScript(c, perClient) {
			res, err := rsess.Execute(raw)
			if err != nil {
				t.Fatal(err)
			}
			want := refsKey(res.Refs)
			if phase1[c][i] != want {
				t.Fatalf("client %d stmt %d: concurrent phase-1 result diverges from serial replay\n got %s\nwant %s",
					c, i, phase1[c][i], want)
			}
			if phase2[c][i] != want {
				t.Fatalf("client %d stmt %d: concurrent phase-2 (post-swap) result diverges from serial replay\n got %s\nwant %s",
					c, i, phase2[c][i], want)
			}
		}
	}
}

// TestAdmissionControl fills the bounded work queue deterministically
// (the commit gate is held exclusively, so DML statements pile up at
// commit) and asserts the next statement is rejected with
// ErrOverloaded instead of queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	srv := New(fixtureDB(20), Config{MaxConcurrent: 2, QueueDepth: 2})
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv.commitGate.Lock()
	var wg sync.WaitGroup
	const inFlight = 4 // MaxConcurrent + QueueDepth
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw := fmt.Sprintf(`insert into SECURITY value <Security><Symbol>ADM%02d</Symbol></Security>`, i)
			if _, err := sess.Execute(raw); err != nil {
				t.Errorf("queued insert %d: %v", i, err)
			}
		}(i)
	}
	// Wait until all four statements occupy the system (2 executing +
	// 2 queued).
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.admit) < inFlight {
		if time.Now().After(deadline) {
			srv.commitGate.Unlock()
			t.Fatalf("work queue never filled: %d/%d", len(srv.admit), inFlight)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sess.Execute(pointQuery(1)); err != ErrOverloaded {
		srv.commitGate.Unlock()
		t.Fatalf("overloaded server returned %v, want ErrOverloaded", err)
	}
	srv.commitGate.Unlock()
	wg.Wait()

	// Load drained: statements flow again.
	if _, err := sess.Execute(pointQuery(1)); err != nil {
		t.Fatalf("post-drain execute: %v", err)
	}
}

func TestSessionCap(t *testing.T) {
	srv := New(fixtureDB(10), Config{MaxSessions: 2})
	defer srv.Close()
	s1, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.NewSession(); err != ErrTooManySessions {
		t.Fatalf("third session: %v, want ErrTooManySessions", err)
	}
	s1.Close()
	s1.Close() // idempotent
	s3, err := srv.NewSession()
	if err != nil {
		t.Fatalf("session after close: %v", err)
	}
	s3.Close()
	s2.Close()
}

// TestTuneHysteresis walks the tuner through a workload shift: a hot
// query's index is built only after BuildAfter consecutive
// recommendations, and once the workload moves on (capture decay
// evaporates the old query), the index is dropped only after DropAfter
// consecutive rounds without it.
func TestTuneHysteresis(t *testing.T) {
	srv := New(fixtureDB(200), Config{
		BuildAfter:  2,
		DropAfter:   2,
		DecayFactor: 0.5,
		DecayFloor:  3, // weight 16 survives 2 decays, evaporates on the 3rd
	})
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	symbolDef := func() (xindex.Definition, bool) {
		for _, def := range srv.Catalog().Definitions() {
			if def.Pattern.String() == "/Security/Symbol" {
				return def, true
			}
		}
		return xindex.Definition{}, false
	}

	// Hot phase: the point query dominates.
	for i := 0; i < 16; i++ {
		if _, err := sess.Execute(pointQuery(7)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := srv.TuneOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Built) != 0 || rep.PendingBuild == 0 {
		t.Fatalf("round 1 built %v (pending %d), want pure streak accumulation", rep.Built, rep.PendingBuild)
	}
	if _, ok := symbolDef(); ok {
		t.Fatal("symbol index materialized before hysteresis matured")
	}
	rep, err = srv.TuneOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Built) == 0 {
		t.Fatalf("round 2 built nothing: %+v", rep)
	}
	if _, ok := symbolDef(); !ok {
		t.Fatal("symbol index missing after build round")
	}

	// Workload shift: only sector queries from here on. The point
	// query's weight decays out of the capture; the symbol index must
	// survive DropAfter-1 rounds and fall on the next.
	droppedAt := 0
	for round := 3; round <= 8; round++ {
		for i := 0; i < 4; i++ {
			if _, err := sess.Execute(sectorQuery("Tech")); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := srv.TuneOnce()
		if err != nil {
			t.Fatal(err)
		}
		for _, def := range rep.Dropped {
			if def.Pattern.String() == "/Security/Symbol" {
				droppedAt = round
			}
		}
		if droppedAt != 0 {
			break
		}
	}
	if droppedAt == 0 {
		t.Fatal("symbol index never dropped after the workload shifted")
	}
	if _, ok := symbolDef(); ok {
		t.Fatal("dropped index still in catalog")
	}
}

// TestSnapshotWarmStart persists a tuned server and asserts the
// restarted one comes up with the catalog materialized and serving
// index plans immediately.
func TestSnapshotWarmStart(t *testing.T) {
	srv := New(fixtureDB(150), Config{BuildAfter: 1})
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sess.Execute(pointQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := srv.TuneOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Built) == 0 {
		t.Fatal("no index built before snapshot")
	}
	wantDefs := srv.Catalog().Definitions()
	wantRes, err := sess.Execute(pointQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()

	path := filepath.Join(t.TempDir(), "xixa.db")
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	restored, err := OpenSnapshot(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	gotDefs := restored.Catalog().Definitions()
	if len(gotDefs) != len(wantDefs) {
		t.Fatalf("restored catalog has %d defs, want %d", len(gotDefs), len(wantDefs))
	}
	for i := range gotDefs {
		if gotDefs[i].Key() != wantDefs[i].Key() {
			t.Fatalf("restored def %d = %s, want %s", i, gotDefs[i], wantDefs[i])
		}
		idx, ok := restored.Catalog().Get(gotDefs[i])
		if !ok || idx.Entries() == 0 {
			t.Fatalf("restored index %s is cold", gotDefs[i])
		}
		if !idx.SelfMaintained() {
			t.Fatalf("restored index %s not feed-maintained", gotDefs[i])
		}
	}
	rsess, err := restored.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close()
	plan, err := rsess.Explain(pointQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesIndexes() {
		t.Fatalf("restored server scans instead of probing: %s", plan)
	}
	res, err := rsess.Execute(pointQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if refsKey(res.Refs) != refsKey(wantRes.Refs) {
		t.Fatalf("restored results diverge: %s vs %s", refsKey(res.Refs), refsKey(wantRes.Refs))
	}
}

// TestClosedServerRejects asserts post-Close behavior: statements and
// sessions are refused, and the server's online indexes detach from
// the (caller-owned) database's change feeds.
func TestClosedServerRejects(t *testing.T) {
	db := fixtureDB(50)
	srv := New(db, Config{BuildAfter: 1})
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(pointQuery(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.TuneOnce(); err != nil {
		t.Fatal(err)
	}
	defs := srv.Catalog().Definitions()
	if len(defs) == 0 {
		t.Fatal("no index built before Close")
	}
	idx, _ := srv.Catalog().Get(defs[0])
	srv.Close()
	srv.Close() // idempotent
	if _, err := sess.Execute(pointQuery(1)); err != ErrClosed {
		t.Fatalf("execute on closed server: %v, want ErrClosed", err)
	}
	if _, err := srv.NewSession(); err != ErrClosed {
		t.Fatalf("session on closed server: %v, want ErrClosed", err)
	}
	// Closed server's indexes no longer tax the database's mutations.
	tbl, err := db.Table("SECURITY")
	if err != nil {
		t.Fatal(err)
	}
	entries := idx.Entries()
	tbl.Insert(secDoc("POSTCLOSE", "Tech", 1.0))
	if idx.Entries() != entries {
		t.Fatal("closed server's index still feed-maintained")
	}
}
