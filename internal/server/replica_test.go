package server

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"xixa/internal/persist"
	"xixa/internal/wal"
)

// TestRecoverTruncatesDanglingFrame is the regression test for the
// dangling-frame hazard: an unterminated transaction frame left in the
// log after a crash must be physically truncated by recovery, not just
// skipped during replay — otherwise new commits append after the
// orphaned begin, and the *next* recovery's framing pass buffers them
// into the dead frame and discards them.
func TestRecoverTruncatesDanglingFrame(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, insertStmt("DF000", 1))
	committed := srv.WAL().LastLSN()
	srv.Close()

	// Crash mid-frame: append txn-begin plus one operation with no
	// commit record, as a writer killed between AppendTxn batches of a
	// larger story would leave. AppendTxn appends whatever payloads it
	// is given; framing is the caller's contract.
	l, _, err := wal.Open(filepath.Join(dir, walLogFile), wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := wal.EncodeDocInsert("SECURITY", secDoc("DFLOST", "Recovered", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendTxn([][]byte{wal.EncodeTxnBegin(99), ins}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.DanglingTxn {
		t.Fatal("recovery did not report the dangling frame")
	}
	if got := srv2.WAL().LastLSN(); got != committed {
		t.Fatalf("dangling frame not truncated: log at LSN %d, committed prefix ends at %d", got, committed)
	}

	// The once-latent corruption: commit after recovery, then recover
	// again. With the frame physically gone the new commit must survive.
	sess2, err := srv2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess2, insertStmt("DF001", 2))
	want := dbBytes(t, srv2)
	srv2.Close()

	srv3, info3, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if info3.DanglingTxn {
		t.Fatal("second recovery saw a dangling frame that should be gone")
	}
	if !bytes.Equal(dbBytes(t, srv3), want) {
		t.Fatal("commit after dangling-frame recovery was lost on the next recovery")
	}
}

// TestReplicaReadOnlyAndPromote covers the replica write fence: a
// server recovered with Config.Replica refuses every mutation path —
// statements, explicit transactions, tuning — while serving reads, and
// Promote flips it into a fully writable, durably logging primary.
func TestReplicaReadOnlyAndPromote(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(20))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, insertStmt("RP000", 1))
	srv.Close()

	cfg := durableCfg(dir)
	cfg.Replica = true
	rep, _, err := Recover(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if !rep.ReadOnly() {
		t.Fatal("replica server is not read-only")
	}

	rsess, err := rep.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsess.Execute(insertStmt("RP001", 2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica insert: got %v, want ErrReadOnly", err)
	}
	if _, err := rsess.Execute(pointQuery(3)); err != nil {
		t.Fatalf("replica query refused: %v", err)
	}
	if _, err := rep.TuneOnce(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica TuneOnce: got %v, want ErrReadOnly", err)
	}

	// Explicit transactions: mutations refused, snapshot reads commit.
	tx, err := rsess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Execute(insertStmt("RP002", 3)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica txn insert: got %v, want ErrReadOnly", err)
	}
	if _, err := tx.Execute(pointQuery(4)); err != nil {
		t.Fatalf("replica txn query refused: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only txn commit on replica: %v", err)
	}

	// Promotion: writes flow, and they reach the log — recover the
	// directory again and the post-promotion commit must be there.
	rep.Promote()
	if rep.ReadOnly() {
		t.Fatal("Promote left the server read-only")
	}
	mustExec(t, rsess, insertStmt("RP003", 4))
	want := dbBytes(t, rep)
	rep.Close()

	again, _, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if !bytes.Equal(dbBytes(t, again), want) {
		t.Fatal("post-promotion commit did not survive recovery")
	}
}

// TestFencedServerRefusesWrites: fencing is permanent and beats every
// mutation path, while reads keep serving.
func TestFencedServerRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	srv.Fence()
	if _, err := sess.Execute(insertStmt("FN000", 1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced insert: got %v, want ErrFenced", err)
	}
	if _, err := sess.Execute(pointQuery(2)); err != nil {
		t.Fatalf("fenced query refused: %v", err)
	}
	// Promote must not resurrect a fenced server.
	srv.Promote()
	if _, err := sess.Execute(insertStmt("FN001", 1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced insert after Promote: got %v, want ErrFenced", err)
	}
}

// restoreCfg configures a server whose WAL rolls small segments into an
// archive, so checkpoints preserve rather than destroy history.
func restoreCfg(dir string) Config {
	cfg := durableCfg(dir)
	cfg.SegmentBytes = 4096
	cfg.ArchiveDir = filepath.Join(dir, "archive")
	return cfg
}

// TestRestoreToLSN drives the point-in-time restore acceptance
// criterion: with WAL archiving on, RestoreToLSN reproduces the exact
// image at every committed LSN — across segment rolls and a checkpoint
// that truncated the live log — and a target inside a transaction
// frame restores to the state just before the frame.
func TestRestoreToLSN(t *testing.T) {
	dir := t.TempDir()
	cfg := restoreCfg(dir)
	srv, _, err := Recover(cfg, bootstrapFixture(25))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	// One committed image per insert: LSN -> expected serialized state.
	type point struct {
		lsn  uint64
		snap []byte
	}
	var points []point
	record := func() {
		points = append(points, point{srv.WAL().LastLSN(), dbBytes(t, srv)})
	}
	record() // the bootstrap image at the initial checkpoint LSN
	for i := 0; i < 12; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("PT%03d", i), i))
		record()
		if i == 5 {
			if err := srv.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A multi-operation frame, so a mid-frame target exists.
	tx, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tx.Execute(insertStmt(fmt.Sprintf("PTX%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	preFrame := points[len(points)-1]
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	record()
	final := points[len(points)-1]
	srv.Close()

	for _, p := range points {
		res, err := RestoreToLSN(dir, cfg.ArchiveDir, p.lsn)
		if err != nil {
			t.Fatalf("RestoreToLSN(%d): %v", p.lsn, err)
		}
		if res.LSN != p.lsn {
			t.Fatalf("RestoreToLSN(%d) landed at %d", p.lsn, res.LSN)
		}
		var buf bytes.Buffer
		if err := persist.SaveDatabase(&buf, res.DB, res.Defs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), p.snap) {
			t.Fatalf("restored image at LSN %d is not bit-identical to the live image", p.lsn)
		}
	}

	// Mid-frame target: the frame spans (preFrame.lsn, final.lsn]; a
	// target two records in must drop the open frame and land on the
	// pre-frame image.
	mid := preFrame.lsn + 2
	if mid >= final.lsn {
		t.Fatalf("frame too short for a mid-frame target: %d..%d", preFrame.lsn, final.lsn)
	}
	res, err := RestoreToLSN(dir, cfg.ArchiveDir, mid)
	if err != nil {
		t.Fatalf("RestoreToLSN(mid-frame %d): %v", mid, err)
	}
	if res.LSN != preFrame.lsn {
		t.Fatalf("mid-frame restore landed at %d, want the pre-frame LSN %d", res.LSN, preFrame.lsn)
	}
	var buf bytes.Buffer
	if err := persist.SaveDatabase(&buf, res.DB, res.Defs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), preFrame.snap) {
		t.Fatal("mid-frame restore is not the pre-frame image")
	}

	// Beyond history: a loud error, not a silent partial image.
	if _, err := RestoreToLSN(dir, cfg.ArchiveDir, final.lsn+10); err == nil {
		t.Fatal("restore beyond history succeeded")
	}
}

// TestCheckpointArchivesHistory: with an archive configured, a
// checkpoint preserves the truncated WAL segments and an LSN-stamped
// checkpoint copy, and a cursor can still stream from genesis.
func TestCheckpointArchivesHistory(t *testing.T) {
	dir := t.TempDir()
	cfg := restoreCfg(dir)
	srv, _, err := Recover(cfg, bootstrapFixture(10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustExec(t, sess, insertStmt(fmt.Sprintf("AR%03d", i), i))
	}
	tip := srv.WAL().LastLSN()
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	chks, err := persist.ListArchivedCheckpoints(cfg.ArchiveDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chks) == 0 {
		t.Fatal("checkpoint archived no LSN-stamped copy")
	}
	if got := chks[len(chks)-1].LSN; got != tip {
		t.Fatalf("archived checkpoint stamped %d, want %d", got, tip)
	}
	segs, err := wal.ListSegmentFiles(cfg.ArchiveDir, walLogFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("checkpoint archived no WAL segments")
	}
	if got := srv.WAL().EarliestLSN(); got != 0 {
		t.Fatalf("EarliestLSN with archive = %d, want 0", got)
	}

	// The full history replays from the archive: every LSN from genesis
	// to the tip, exactly once.
	cur := srv.WAL().Cursor(0)
	defer cur.Close()
	next := uint64(1)
	for {
		lsn, _, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if lsn == 0 {
			break
		}
		if lsn != next {
			t.Fatalf("cursor produced LSN %d, want %d", lsn, next)
		}
		next++
	}
	if next != tip+1 {
		t.Fatalf("cursor stopped at LSN %d, want to reach %d", next-1, tip)
	}
}
