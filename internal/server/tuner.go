package server

import (
	"fmt"
	"time"

	"xixa/internal/core"
	"xixa/internal/optimizer"
	"xixa/internal/xindex"
)

// tuner holds the autonomous tuning loop's state between rounds: the
// hysteresis streaks that keep a churning workload from thrashing the
// catalog. A definition must be recommended in BuildAfter consecutive
// rounds before it is built, and a materialized index must be absent
// from DropAfter consecutive recommendations before it is dropped —
// one round's blip in either direction resets the other direction's
// streak.
type tuner struct {
	cfg         Config
	round       int
	buildStreak map[string]int
	dropStreak  map[string]int
}

func (t *tuner) init(cfg Config) {
	t.cfg = cfg
	t.buildStreak = make(map[string]int)
	t.dropStreak = make(map[string]int)
}

// TuneReport is the outcome of one tuning round.
type TuneReport struct {
	Round int
	// Skipped reports that the round did nothing because no workload
	// has been captured yet.
	Skipped bool
	// WorkloadSize is the number of unique captured statements fed to
	// the advisor.
	WorkloadSize int
	// Recommended is the advisor's configuration for this round.
	Recommended []xindex.Definition
	// Built and Dropped are the definitions actually materialized and
	// dropped this round, after hysteresis.
	Built   []xindex.Definition
	Dropped []xindex.Definition
	// PendingBuild and PendingDrop count definitions accumulating
	// streak toward a future build or drop.
	PendingBuild int
	PendingDrop  int
	// Benefit is the advisor's estimated workload benefit of the
	// recommended configuration.
	Benefit float64
	// Checkpointed reports that the autonomous loop wrote a checkpoint
	// after this round because the WAL grew past CheckpointBytes.
	Checkpointed bool
	Elapsed      time.Duration
}

// String renders the report as one log line.
func (r *TuneReport) String() string {
	if r.Skipped {
		return fmt.Sprintf("tune round %d: skipped (no captured workload)", r.Round)
	}
	suffix := ""
	if r.Checkpointed {
		suffix = " [checkpointed]"
	}
	return fmt.Sprintf("tune round %d: %d stmts -> %d recommended, built %d, dropped %d (pending %d/%d) in %v%s",
		r.Round, r.WorkloadSize, len(r.Recommended), len(r.Built), len(r.Dropped),
		r.PendingBuild, r.PendingDrop, r.Elapsed.Round(time.Millisecond), suffix)
}

// TuneOnce runs one tuning round: snapshot the captured workload, run
// the advisor on it under the configured budget, diff the
// recommendation against the materialized catalog, apply hysteresis,
// and schedule online builds and deferred drops for the definitions
// whose streaks matured. The capture decays afterwards, so traffic
// that stopped arriving fades from future rounds.
//
// TuneOnce serializes with itself (the autonomous loop and manual
// calls share the tuner) and must not be called from inside statement
// execution — deferred drops wait for in-flight statements to drain.
func (s *Server) TuneOnce() (*TuneReport, error) {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.tuneOnceLocked()
}

func (s *Server) tuneOnceLocked() (*TuneReport, error) {
	// A replica's catalog is driven by the primary's index records; a
	// locally tuned configuration would diverge from the stream (and
	// try to log create/drop records into a sink-less WAL). A fenced
	// ex-primary must not mutate its catalog either.
	if err := s.writable(); err != nil {
		return nil, err
	}
	start := time.Now()
	t := &s.tuner
	t.round++
	s.met.tunerRounds.Inc()
	rep := &TuneReport{Round: t.round}

	w := s.capture.Workload()
	if w.Len() == 0 {
		rep.Skipped = true
		s.met.tunerSkipped.Inc()
		return rep, nil
	}
	rep.WorkloadSize = w.Len()

	opts := core.DefaultOptions()
	opts.Parallelism = t.cfg.Parallelism
	rec, err := core.Advise(s.db, s.opt, w, opts, t.cfg.Algorithm, t.cfg.Budget)
	if err != nil {
		return rep, err
	}
	rep.Recommended = rec.Definitions()
	rep.Benefit = rec.Benefit

	toBuild, toDrop := optimizer.DiffConfigs(s.cat.Definitions(), rep.Recommended)

	// Hysteresis: streaks carry over only while the diff keeps asking
	// for the same action; a definition leaving the diff resets.
	var buildNow, dropNow []xindex.Definition
	nextBuild := make(map[string]int, len(toBuild))
	for _, def := range toBuild {
		key := def.Key()
		n := t.buildStreak[key] + 1
		if n >= t.cfg.BuildAfter {
			buildNow = append(buildNow, def)
			continue
		}
		nextBuild[key] = n
	}
	nextDrop := make(map[string]int, len(toDrop))
	for _, def := range toDrop {
		key := def.Key()
		n := t.dropStreak[key] + 1
		if n >= t.cfg.DropAfter {
			dropNow = append(dropNow, def)
			continue
		}
		nextDrop[key] = n
	}
	t.buildStreak = nextBuild
	t.dropStreak = nextDrop
	rep.PendingBuild = len(nextBuild)
	rep.PendingDrop = len(nextDrop)

	built, dropped, err := s.mgr.Reconcile(buildNow, dropNow)
	rep.Built = built
	rep.Dropped = dropped
	if err != nil {
		return rep, err
	}

	// Catalog changes are logged like any other mutation: a crash after
	// this round recovers the same index configuration the tuner left.
	// Ordering against transaction commits is version-safe without any
	// extra locking: an index-create record only ever replays onto the
	// committed document state the preceding WAL records rebuilt, and
	// recovery rebuilds the index through the online build path — so a
	// create interleaved between two transactions' frames indexes
	// exactly the first's effects, same as the live BuildOnline did
	// (its SubscribeScan cut never splits a commit's per-table batch).
	if s.wal != nil && len(built)+len(dropped) > 0 {
		var lsn uint64
		for _, def := range built {
			if lsn, err = s.wal.AppendIndexCreate(def); err != nil {
				return rep, err
			}
		}
		for _, def := range dropped {
			if lsn, err = s.wal.AppendIndexDrop(def); err != nil {
				return rep, err
			}
		}
		if err := s.wal.Commit(lsn); err != nil {
			return rep, err
		}
	}

	s.capture.Decay(t.cfg.DecayFactor, t.cfg.DecayFloor)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// StartAutoTune launches the autonomous tuning loop at the configured
// TuneInterval, delivering each round's report (and error, if any) to
// observe, which may be nil. It is a no-op if the interval is zero or
// a loop is already running.
func (s *Server) StartAutoTune(observe func(*TuneReport, error)) {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.cfg.TuneInterval <= 0 || s.loopStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.loopStop, s.loopDone = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.cfg.TuneInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.loopMu.Lock()
				if s.closed.Load() {
					s.loopMu.Unlock()
					return
				}
				rep, err := s.tuneOnceLocked()
				// The loop's ticker doubles as the checkpoint trigger:
				// once the WAL grows past the threshold, fold a
				// checkpoint into the round so replay-on-recovery stays
				// bounded no matter how long the daemon runs.
				if s.wal != nil && s.wal.SizeBytes() >= s.cfg.CheckpointBytes {
					cerr := s.checkpointLocked()
					if cerr == nil {
						rep.Checkpointed = true
					} else if err == nil {
						err = cerr
					}
				}
				s.loopMu.Unlock()
				if observe != nil {
					observe(rep, err)
				}
			}
		}
	}()
}

// StopAutoTune stops the autonomous loop and waits for the in-progress
// round, if any, to finish.
func (s *Server) StopAutoTune() {
	s.loopMu.Lock()
	stop, done := s.loopStop, s.loopDone
	s.loopStop, s.loopDone = nil, nil
	s.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
