package server

// Server-side observability wiring: every server owns one obs.Registry
// (per-server, not global, so two servers in one process — a primary
// and a replica under test — never share counters) and one obs.Tracer.
// The serving layer's own counters live here as registry handles, and
// the layers below (storage, WAL, xindex manager) register theirs in
// New/attachWAL, so TxnStats, \stats, and /metrics all read the same
// numbers.

import (
	"xixa/internal/obs"
	"xixa/internal/workload"
)

// defaultTraceSampleEvery is the tracer's default sampling interval:
// one statement in 16 gets a full QueryTrace. Tracing a statement costs
// a few hundred nanoseconds (allocation plus several clock reads)
// against a ~5µs tuned serve, so tracing everything would be ~10%
// overhead; 1-in-16 keeps it under the 2% budget while still filling
// the ring within a second of normal traffic. The first statement is
// always traced (obs.Tracer.Sample), so /trace/last is never empty on
// a server that has served anything.
const defaultTraceSampleEvery = 16

// serverMetrics bundles the serving layer's registry handles. All
// fields are non-nil once newServerMetrics returns.
type serverMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	// Statement layer.
	statements  *obs.Counter   // executed successfully
	stmtErrors  *obs.Counter   // failed (parse errors excluded: no statement)
	overloaded  *obs.Counter   // rejected by admission control
	stmtSeconds *obs.Histogram // end-to-end latency of served statements
	sessions    *obs.Counter   // sessions ever opened

	// Transaction layer (the single source of truth: TxnStats reads
	// these, not shadow atomics).
	commits   *obs.Counter
	aborts    *obs.Counter
	conflicts *obs.Counter
	retries   *obs.Counter // auto-commit conflict retries
	backoffNs *obs.Counter // cumulative conflict backoff, integer ns

	// Tuner / durability.
	tunerRounds  *obs.Counter
	tunerSkipped *obs.Counter
	checkpoints  *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	tracer.SetSampleEvery(defaultTraceSampleEvery)
	return &serverMetrics{
		reg:    reg,
		tracer: tracer,

		statements: reg.Counter("xixa_statements_total"),
		stmtErrors: reg.Counter("xixa_statement_errors_total"),
		overloaded: reg.Counter("xixa_overloaded_total"),
		// 1µs .. ~8s in doubling buckets: spans an in-memory point query
		// and a conflict-retry storm waiting on fsyncs.
		stmtSeconds: reg.Histogram("xixa_statement_seconds", obs.ExpBuckets(1e-6, 2, 24)),
		sessions:    reg.Counter("xixa_sessions_opened_total"),

		commits:   reg.Counter("xixa_txn_commits_total"),
		aborts:    reg.Counter("xixa_txn_aborts_total"),
		conflicts: reg.Counter("xixa_txn_conflicts_total"),
		retries:   reg.Counter("xixa_txn_retries_total"),
		backoffNs: reg.Counter("xixa_txn_backoff_nanoseconds_total"),

		tunerRounds:  reg.Counter("xixa_tuner_rounds_total"),
		tunerSkipped: reg.Counter("xixa_tuner_rounds_skipped_total"),
		checkpoints:  reg.Counter("xixa_checkpoints_total"),
	}
}

// Metrics returns the server's metrics registry. Callers may register
// their own gauges on it (the replication layer does) and snapshot or
// render it at will.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Tracer returns the server's query-trace ring.
func (s *Server) Tracer() *obs.Tracer { return s.met.tracer }

// SetTraceSampleEvery adjusts trace sampling to one statement in n
// (n <= 1 traces every statement).
func (s *Server) SetTraceSampleEvery(n int) { s.met.tracer.SetSampleEvery(n) }

// cardObservations converts a trace's plan-node cardinality rows into
// the capture ring's feedback form.
func cardObservations(nodes []obs.NodeCard) []workload.CardObservation {
	out := make([]workload.CardObservation, len(nodes))
	for i, n := range nodes {
		out[i] = workload.CardObservation{Op: n.Op, Site: n.Site, Est: n.Est, Actual: n.Actual}
	}
	return out
}
