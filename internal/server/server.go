// Package server is the serving layer: it executes statements from
// many concurrent client sessions against one live engine, captures
// the executed workload, and (tuner.go) runs the paper's advisor
// autonomously over that capture, materializing its recommendations
// online. It is the piece that turns the batch advisor reproduction
// into a self-tuning server — the deployment the paper positions the
// advisor for, where workload capture happens inside the running DBMS
// and recommendations feed back without stopping traffic.
//
// Concurrency model:
//
//   - Queries execute concurrently and never take a server-wide lock.
//     The read path is lock-free against mutators: the catalog is read
//     through immutable snapshots (engine.View), documents are
//     immutable (updates are copy-on-write storage.Table.Replace), and
//     statistics snapshots publish through atomic pointers.
//   - Mutating statements run as snapshot-isolated transactions
//     (engine.Txn over storage's MVCC version chains): each executes
//     against a pinned snapshot, buffers its writes, and commits with
//     first-writer-wins validation, so writers on disjoint documents
//     proceed in parallel — there is no global writer lock. A conflict
//     aborts the transaction cleanly and the statement retries on a
//     fresh snapshot (txn.go); both proceed concurrently with queries.
//   - Checkpoints and snapshot saves quiesce commits through commitGate
//     (a writer-preference RWMutex): every commit holds the read side,
//     so the exclusive side observes a point-in-time database with no
//     transaction partially published and no WAL record past the
//     checkpoint LSN that the checkpoint already covers.
//   - Admission control bounds the statements in the system: at most
//     MaxConcurrent execute while QueueDepth more wait; past that,
//     Execute fails fast with ErrOverloaded instead of building an
//     unbounded backlog.
//   - Index drops defer their release until every statement in flight
//     at drop time has finished (the gate barrier), so a plan chosen
//     against the old configuration can still probe the index it
//     references.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xixa/internal/core"
	"xixa/internal/engine"
	"xixa/internal/obs"
	"xixa/internal/optimizer"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/workload"
	"xixa/internal/xindex"
	"xixa/internal/xquery"
	"xixa/internal/xstats"
)

// Errors returned by the admission and session layers.
var (
	// ErrOverloaded reports that the bounded work queue is full; the
	// client should back off and retry.
	ErrOverloaded = errors.New("server: overloaded (work queue full)")
	// ErrTooManySessions reports the session cap was hit.
	ErrTooManySessions = errors.New("server: too many sessions")
	// ErrClosed reports the server has shut down.
	ErrClosed = errors.New("server: closed")
	// ErrReadOnly reports a mutation on a read-only replica; only a
	// promotion (Promote) opens it for writes.
	ErrReadOnly = errors.New("server: read-only replica (promote to accept writes)")
	// ErrFenced reports a mutation on a fenced server: a newer primary
	// epoch exists, so accepting the write would fork history. A fenced
	// server never un-fences; it must be rebuilt as a replica of the
	// new primary.
	ErrFenced = errors.New("server: fenced by a newer primary epoch")
)

// Config tunes the serving layer. The zero value selects sensible
// defaults everywhere.
type Config struct {
	// MaxConcurrent caps statements executing simultaneously
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth caps statements waiting for an execution slot beyond
	// the executing ones (0 = 4x MaxConcurrent).
	QueueDepth int
	// MaxSessions caps open sessions (0 = 256).
	MaxSessions int

	// CaptureSize bounds the workload capture ring
	// (0 = workload.DefaultCaptureSize).
	CaptureSize int
	// DecayFactor is the per-tuning-round exponential decay applied to
	// captured statement weights (0 = 0.7).
	DecayFactor float64
	// DecayFloor evaporates captured entries whose decayed weight falls
	// below it (0 = 0.25).
	DecayFloor float64

	// Algorithm is the advisor search the tuning loop runs
	// ("" = core.AlgoTopDownFull).
	Algorithm string
	// Budget is the disk budget in bytes for recommended indexes
	// (0 = the All-Index size of each round's candidates).
	Budget int64
	// BuildAfter is the build hysteresis: a definition must appear in
	// this many consecutive recommendations before it is materialized
	// (0 = 2). 1 materializes immediately.
	BuildAfter int
	// DropAfter is the drop hysteresis: a materialized index must be
	// absent from this many consecutive recommendations before it is
	// dropped (0 = 3).
	DropAfter int
	// TuneInterval is the autonomous tuning period for StartAutoTune
	// (0 = autonomous tuning disabled; TuneOnce still works).
	TuneInterval time.Duration
	// Parallelism is threaded into each advisor round
	// (core.Options.Parallelism).
	Parallelism int

	// WALDir enables the durability layer when the server is started
	// through Recover: the directory holding the write-ahead log and
	// its checkpoints. Empty = no durability (New never opens a WAL).
	WALDir string
	// SyncPolicy selects when commits reach stable storage
	// (wal.SyncAlways / SyncBatched / SyncOff; the zero value is
	// SyncAlways).
	SyncPolicy wal.SyncPolicy
	// SyncMaxDelay bounds the background fsync lag under
	// wal.SyncBatched (0 = 2ms).
	SyncMaxDelay time.Duration
	// CheckpointBytes triggers an automatic checkpoint from the tuning
	// loop's ticker once the WAL grows past it (0 = 64 MiB).
	CheckpointBytes int64
	// SegmentBytes rolls the WAL into sealed segments once the active
	// file outgrows it (0 = single-file log). Segmentation is what lets
	// checkpoints archive history instead of deleting it.
	SegmentBytes int64
	// ArchiveDir, when set, preserves checkpointed-away WAL segments
	// and LSN-stamped checkpoint copies instead of deleting them — the
	// retention replication catch-up and point-in-time restore read
	// from. Same filesystem as WALDir.
	ArchiveDir string
	// Replica starts the server as a read-only replication follower:
	// mutations are refused with ErrReadOnly, the tuner refuses to run,
	// and the WAL attaches without a change-feed sink (records arrive
	// pre-logged from the primary's stream). Promote flips the server
	// into a writable primary.
	Replica bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.CaptureSize <= 0 {
		c.CaptureSize = workload.DefaultCaptureSize
	}
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = 0.7
	}
	if c.DecayFloor <= 0 {
		c.DecayFloor = 0.25
	}
	if c.Algorithm == "" {
		c.Algorithm = core.AlgoTopDownFull
	}
	if c.BuildAfter <= 0 {
		c.BuildAfter = 2
	}
	if c.DropAfter <= 0 {
		c.DropAfter = 3
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 64 << 20
	}
	return c
}

// walSub is one table's WAL-sink subscription handle.
type walSub struct {
	tbl *storage.Table
	id  storage.SubID
}

// gate is the in-flight statement barrier deferred drops wait on:
// statements enter the current epoch's WaitGroup; a barrier swaps in a
// fresh epoch and waits only for the statements that entered before the
// swap, so continuous traffic cannot stall a drop forever.
type gate struct {
	mu sync.Mutex
	wg *sync.WaitGroup
}

func (g *gate) enter() *sync.WaitGroup {
	g.mu.Lock()
	wg := g.wg
	wg.Add(1)
	g.mu.Unlock()
	return wg
}

// barrier blocks until every statement in flight at call time finishes.
func (g *gate) barrier() {
	g.mu.Lock()
	old := g.wg
	g.wg = &sync.WaitGroup{}
	g.mu.Unlock()
	old.Wait()
}

// Server is the concurrent serving daemon core.
type Server struct {
	cfg Config

	db  *storage.Database
	opt *optimizer.Optimizer
	cat *engine.Catalog
	eng *engine.Engine
	mgr *xindex.Manager

	capture *workload.Capture

	// wal, when non-nil (servers started through Recover), is the
	// write-ahead log every table's change feed appends into; walSubs
	// are the sink subscriptions, detached on Close because the
	// database is caller-owned and may outlive the server.
	wal     *wal.Log
	walDir  string
	walSubs []walSub

	admit  chan struct{} // bounds statements in the system
	slots  chan struct{} // bounds statements executing
	flight gate          // in-flight barrier for deferred drops

	// commitGate quiesces transaction commits: every commit holds the
	// read side, checkpoint/snapshot hold the write side to observe a
	// stable point-in-time image. Commits never block each other here.
	commitGate sync.RWMutex

	// txnSeq issues WAL framing IDs for multi-op transactions. The
	// commit/abort/conflict counters live on met (metrics.go): the
	// registry is the single source of truth and TxnStats reads it.
	txnSeq atomic.Uint64

	// met is the server's observability bundle: the metrics registry,
	// the serving layer's counter/histogram handles, and the trace ring.
	met *serverMetrics

	// reorderBuffered/reorderPeak snapshot the recovery applier's
	// stamp-reorder counters (frames that arrived ahead of a stamp gap
	// during replay); set once by Recover, read by TxnStats and the
	// registry's gauges.
	reorderBuffered atomic.Uint64
	reorderPeak     atomic.Uint64

	sessMu   sync.Mutex
	sessions int
	nextSess int64

	tuner  tuner
	closed atomic.Bool

	// readOnly marks a replication follower (mutations refused until
	// Promote); fenced marks a deposed primary that has seen a newer
	// epoch (mutations refused forever).
	readOnly atomic.Bool
	fenced   atomic.Bool

	loopMu   sync.Mutex
	loopStop chan struct{}
	loopDone chan struct{}
}

// New creates a server over a database: a live (incrementally
// maintained) optimizer, an initially empty index catalog, and an
// engine wired to both.
func New(db *storage.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	opt := optimizer.NewLive(db)
	cat := engine.NewCatalog()
	s := &Server{
		cfg:     cfg,
		db:      db,
		opt:     opt,
		cat:     cat,
		eng:     engine.New(db, opt, cat),
		capture: workload.NewCapture(cfg.CaptureSize),
		met:     newServerMetrics(),
		admit:   make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.flight.wg = &sync.WaitGroup{}
	s.mgr = xindex.NewManager(db, cat, s.flight.barrier)
	s.tuner.init(cfg)
	if cfg.Replica {
		s.readOnly.Store(true)
	}
	// Wire the layers below into the server's registry, and bridge the
	// state they already maintain through pull-style gauges.
	db.InstrumentWith(s.met.reg)
	s.mgr.InstrumentWith(s.met.reg)
	obs.RegisterRuntime(s.met.reg)
	s.met.reg.GaugeFunc("xixa_sessions_open", func() float64 {
		s.sessMu.Lock()
		defer s.sessMu.Unlock()
		return float64(s.sessions)
	})
	s.met.reg.GaugeFunc("xixa_capture_statements", func() float64 { return float64(s.capture.Len()) })
	s.met.reg.GaugeFunc("xixa_index_definitions", func() float64 { return float64(len(s.cat.Definitions())) })
	s.met.reg.GaugeFunc("xixa_replay_reorder_buffered", func() float64 { return float64(s.reorderBuffered.Load()) })
	s.met.reg.GaugeFunc("xixa_replay_reorder_peak", func() float64 { return float64(s.reorderPeak.Load()) })
	return s
}

// writable reports whether the server may accept a mutation right now.
func (s *Server) writable() error {
	if s.fenced.Load() {
		return ErrFenced
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// ReadOnly reports that the server is a not-yet-promoted replica.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Fenced reports that the server has been fenced by a newer primary
// epoch.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// Fence permanently refuses mutations: a newer primary epoch exists,
// and a zombie primary accepting writes would fork history. Reads keep
// working — a fenced server is a stale replica, not a corpse.
func (s *Server) Fence() { s.fenced.Store(true) }

// Promote flips a read-only replica into a writable primary: the WAL
// change-feed sink attaches (a replica runs without one) and mutations
// are accepted. The caller — replica.Follower.Promote — has already
// stopped the stream and truncated any unterminated transaction frame
// from the log. Promoting a server that is not a replica is a no-op.
func (s *Server) Promote() {
	if !s.readOnly.CompareAndSwap(true, false) {
		return
	}
	if s.wal != nil && len(s.walSubs) == 0 {
		s.attachSink()
	}
}

// WALDir returns the durability directory ("" without durability).
func (s *Server) WALDir() string { return s.walDir }

// DB returns the underlying database.
func (s *Server) DB() *storage.Database { return s.db }

// Optimizer returns the server's live optimizer.
func (s *Server) Optimizer() *optimizer.Optimizer { return s.opt }

// Catalog returns the materialized index catalog.
func (s *Server) Catalog() *engine.Catalog { return s.cat }

// Capture returns the live workload capture ring.
func (s *Server) Capture() *workload.Capture { return s.capture }

// Manager returns the online index lifecycle manager.
func (s *Server) Manager() *xindex.Manager { return s.mgr }

// TableStatsSnapshot returns an independently-owned statistics snapshot
// for a table, safe to merge into a cross-server synopsis while this
// server keeps serving writes. The sharded stats plane reads each
// shard's tables through this hook.
func (s *Server) TableStatsSnapshot(table string) (*xstats.TableStats, error) {
	return s.opt.SnapshotTableStats(table)
}

// Session is one client's handle on the server, carrying per-session
// execution statistics. Sessions are safe for concurrent use, though
// clients typically issue one statement at a time.
type Session struct {
	srv *Server
	id  int64

	mu       sync.Mutex
	stats    engine.Stats
	executed int64
	errors   int64
	retries  int64         // auto-commit conflict retries charged to this session
	backoff  time.Duration // cumulative conflict backoff slept by this session
	closed   bool
}

// NewSession opens a session, failing with ErrTooManySessions past the
// cap.
func (s *Server) NewSession() (*Session, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.sessions >= s.cfg.MaxSessions {
		return nil, ErrTooManySessions
	}
	s.sessions++
	s.nextSess++
	s.met.sessions.Inc()
	return &Session{srv: s, id: s.nextSess}, nil
}

// ID returns the session's server-assigned identifier.
func (sess *Session) ID() int64 { return sess.id }

// Close releases the session's slot. Closing twice is a no-op.
func (sess *Session) Close() {
	sess.mu.Lock()
	wasClosed := sess.closed
	sess.closed = true
	sess.mu.Unlock()
	if wasClosed {
		return
	}
	sess.srv.sessMu.Lock()
	sess.srv.sessions--
	sess.srv.sessMu.Unlock()
}

// Stats returns the session's accumulated execution statistics and the
// number of statements executed and failed.
func (sess *Session) Stats() (engine.Stats, int64, int64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.stats, sess.executed, sess.errors
}

// RetryStats returns the session's cumulative first-writer-wins
// conflict retries and the total backoff time slept between them.
func (sess *Session) RetryStats() (retries int64, backoff time.Duration) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.retries, sess.backoff
}

// Result is one statement's outcome.
type Result struct {
	// Refs are the bound result nodes (queries only).
	Refs []xindex.Ref
	// Stats are the execution work counters.
	Stats engine.Stats
}

// Execute parses and executes one statement. When the statement lands
// in the tracer's sample, the trace carries a parse span ahead of the
// execution phases.
func (sess *Session) Execute(raw string) (*Result, error) {
	qt := sess.srv.met.tracer.Sample(raw)
	var parseStart time.Time
	if qt != nil {
		parseStart = time.Now()
	}
	stmt, err := xquery.Parse(raw)
	if qt != nil {
		qt.Span("parse", time.Since(parseStart), 0)
	}
	if err != nil {
		qt.Finish(err)
		return nil, err
	}
	return sess.executeStmt(stmt, qt)
}

// ExecuteStmt executes a parsed statement under admission control: it
// fails fast with ErrOverloaded when the bounded work queue is full,
// otherwise waits for an execution slot. Queries run concurrently;
// mutating statements run as auto-commit MVCC transactions (retried
// transparently on write-write conflict), so writers on disjoint
// documents commit in parallel. Every successful execution is sampled
// into the workload capture ring.
func (sess *Session) ExecuteStmt(stmt *xquery.Statement) (*Result, error) {
	return sess.executeStmt(stmt, sess.srv.met.tracer.Sample(stmt.Raw))
}

// executeStmt is the execution core behind Execute/ExecuteStmt. qt is
// the statement's sampled trace (usually nil); the statement counters
// and the latency histogram run on every call regardless.
func (sess *Session) executeStmt(stmt *xquery.Statement, qt *obs.QueryTrace) (*Result, error) {
	s := sess.srv
	if s.closed.Load() {
		qt.Finish(ErrClosed)
		return nil, ErrClosed
	}
	select {
	case s.admit <- struct{}{}:
	default:
		s.met.overloaded.Inc()
		qt.Finish(ErrOverloaded)
		return nil, ErrOverloaded
	}
	defer func() { <-s.admit }()

	s.slots <- struct{}{} // bounded wait for an execution slot
	defer func() { <-s.slots }()

	wg := s.flight.enter()
	defer wg.Done()

	start := time.Now()
	var refs []xindex.Ref
	var st engine.Stats
	var err error
	if stmt.Kind != xquery.Query {
		if werr := s.writable(); werr != nil {
			sess.mu.Lock()
			sess.errors++
			sess.mu.Unlock()
			s.met.stmtErrors.Inc()
			qt.Finish(werr)
			return nil, werr
		}
		// Mutations run as single-statement transactions: snapshot,
		// buffered writes, first-writer-wins commit, automatic retry on
		// conflict (txn.go). The durability wait happens after the
		// commit publishes: while this session waits for the group
		// fsync, other writers commit and append behind it, so one
		// fsync covers the whole batch (group commit) and commit
		// throughput scales with batch size instead of disk latency.
		refs, st, err = s.executeTxn(stmt, sess, qt)
	} else {
		refs, st, err = s.eng.ExecuteTraced(stmt, qt)
	}
	s.met.stmtSeconds.Observe(time.Since(start).Seconds())
	qt.Finish(err)
	sess.mu.Lock()
	if err != nil {
		sess.errors++
	} else {
		sess.stats.Add(st)
		sess.executed++
	}
	sess.mu.Unlock()
	if err != nil {
		s.met.stmtErrors.Inc()
		return nil, err
	}
	s.met.statements.Inc()
	s.capture.Observe(stmt, 1)
	// A traced statement's estimated-vs-actual plan-node cardinalities
	// feed the capture ring's calibration aggregates (workload.CardStats)
	// — the signal a future cost-model feedback round consumes.
	if qt != nil {
		if nodes := qt.Nodes(); len(nodes) != 0 {
			s.capture.ObserveCards(cardObservations(nodes))
		}
	}
	return &Result{Refs: refs, Stats: st}, nil
}

// Explain returns the plan the optimizer would choose for the
// statement under the current index configuration, without executing.
func (sess *Session) Explain(raw string) (*optimizer.Plan, error) {
	stmt, err := xquery.Parse(raw)
	if err != nil {
		return nil, err
	}
	return sess.srv.opt.EvaluateIndexes(stmt, sess.srv.cat.Definitions())
}

// Close shuts the server down: the autonomous tuning loop stops, new
// statements are rejected with ErrClosed, in-flight statements drain,
// every online-built index releases its change-feed subscription — the
// database is caller-owned and may outlive the server, and a dead
// server's indexes must not keep taxing its mutations — and the WAL
// sink detaches and the log flushes, fsyncs, and closes. Close does
// NOT checkpoint; a shutdown without one simply leaves a longer tail
// for the next Recover to replay.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.StopAutoTune()
	s.flight.barrier()
	for _, def := range s.cat.Definitions() {
		if idx, ok := s.cat.Get(def); ok {
			idx.Release()
		}
	}
	for _, sub := range s.walSubs {
		sub.tbl.Unsubscribe(sub.id)
	}
	if s.wal != nil {
		s.wal.Close()
	}
}

// String summarizes the server state for logs.
func (s *Server) String() string {
	return fmt.Sprintf("server{sessions=%d indexes=%d captured=%d}",
		func() int { s.sessMu.Lock(); defer s.sessMu.Unlock(); return s.sessions }(),
		len(s.cat.Definitions()), s.capture.Len())
}
