package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"xixa/internal/persist"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xindex"
)

// Durability directory layout: one checkpoint (an LSN-stamped persist
// snapshot plus the capture sidecar) and the write-ahead log tail past
// that checkpoint's LSN.
const (
	checkpointFile = "checkpoint.db"
	captureFile    = "checkpoint.capture"
	walLogFile     = "wal.log"
)

// ErrNoWAL reports a durability operation on a server without a WAL.
var ErrNoWAL = errors.New("server: no WAL attached (start with Recover and Config.WALDir)")

// CheckpointPath locates the checkpoint file inside a durability
// directory; WALPath locates the active log. Exported for the
// replication layer, which ships these files between nodes.
func CheckpointPath(walDir string) string { return filepath.Join(walDir, checkpointFile) }

// WALPath returns the active write-ahead log path inside walDir.
func WALPath(walDir string) string { return filepath.Join(walDir, walLogFile) }

// RecoverInfo reports what Recover found and did.
type RecoverInfo struct {
	// CheckpointLSN is the WAL position of the loaded checkpoint
	// (0 when no checkpoint existed).
	CheckpointLSN uint64
	// Replayed is the number of WAL records applied past the
	// checkpoint.
	Replayed int
	// Torn reports that the WAL ended in a torn or corrupt record,
	// which was truncated away — the expected wreckage of a crash
	// mid-append, not an error.
	Torn bool
	// DanglingTxn reports that the WAL ended inside an unterminated
	// transaction frame (a crash between AppendTxn and its fsync); the
	// frame's records were discarded from replay AND physically
	// truncated from the log, so the next recovery never sees them.
	DanglingTxn bool
	// Bootstrapped reports that no durable state existed and the
	// bootstrap callback seeded the database.
	Bootstrapped bool
	// IndexesRebuilt is the number of catalog indexes rebuilt online
	// from the recovered definitions.
	IndexesRebuilt int
	// CaptureRestored is the number of workload-capture entries
	// warm-started from the checkpoint's sidecar.
	CaptureRestored int
	// CaptureError, when non-nil, reports a sidecar that existed but
	// would not load (corruption). Recovery proceeds with a cold
	// capture — the sidecar is a warm-start cache, not data — and the
	// caller decides whether to log it.
	CaptureError error
}

func (i *RecoverInfo) String() string {
	if i.Bootstrapped {
		return "recover: bootstrapped fresh database (initial checkpoint written)"
	}
	s := fmt.Sprintf("recover: checkpoint LSN %d, %d WAL records replayed, %d indexes rebuilt, %d capture entries restored",
		i.CheckpointLSN, i.Replayed, i.IndexesRebuilt, i.CaptureRestored)
	if i.Torn {
		s += " (torn final record truncated)"
	}
	if i.CaptureError != nil {
		s += fmt.Sprintf(" (capture sidecar unreadable, starting cold: %v)", i.CaptureError)
	}
	return s
}

// Recover builds a durable server from cfg.WALDir: it loads the newest
// checkpoint if one exists, replays the WAL tail past the checkpoint's
// LSN (tolerating a torn final record: replay stops at the first CRC
// mismatch and the tear is truncated away), rebuilds the recovered
// index catalog online, warm-starts the workload capture from the
// checkpoint's sidecar, and attaches the WAL sink to every table
// before the first session can open. If the directory holds no durable
// state, bootstrap (may be nil) seeds the database and an initial
// checkpoint is written before serving, so the seed data itself is
// never at risk.
//
// This is the daemon's one start path: a graceful restart and a
// crash recovery differ only in how many records the tail holds.
func Recover(cfg Config, bootstrap func() (*storage.Database, error)) (*Server, *RecoverInfo, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir == "" {
		return nil, nil, errors.New("server: Recover requires Config.WALDir")
	}
	if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return nil, nil, err
	}
	info := &RecoverInfo{}

	// Load the checkpoint, if any. Only a clean "does not exist" may
	// be treated as fresh state — any other stat failure could be
	// hiding a checkpoint, and recovering without it loses data.
	var db *storage.Database
	var defs []xindex.Definition
	var checkpointStamp uint64
	chkPath := filepath.Join(cfg.WALDir, checkpointFile)
	hadCheckpoint := false
	if _, err := os.Stat(chkPath); err == nil {
		db, defs, info.CheckpointLSN, checkpointStamp, err = persist.LoadCheckpointFile(chkPath)
		if err != nil {
			return nil, nil, fmt.Errorf("server: loading checkpoint: %w", err)
		}
		// The snapshot already reflects every commit through its stamp;
		// advance the allocator so post-recovery commits continue the
		// sequence instead of re-issuing stamps the image covers.
		db.AdvanceStamp(checkpointStamp)
		hadCheckpoint = true
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: checking checkpoint: %w", err)
	}

	// Open the log and scan its intact records.
	l, scanned, err := wal.Open(filepath.Join(cfg.WALDir, walLogFile), wal.Options{
		Policy:       cfg.SyncPolicy,
		MaxDelay:     cfg.SyncMaxDelay,
		SegmentBytes: cfg.SegmentBytes,
		ArchiveDir:   cfg.ArchiveDir,
	})
	if err != nil {
		return nil, nil, err
	}
	info.Torn = scanned.Torn
	fail := func(err error) (*Server, *RecoverInfo, error) {
		l.Close()
		return nil, nil, err
	}

	// Any durable state implies a checkpoint exists: Recover always
	// writes the initial one before a single session can open, so a
	// WAL with a non-zero start OR any records at all proves a
	// checkpoint was written and is now missing (deleted, restored
	// from an older backup). Recovering anyway would silently rebuild
	// a gutted database from the tail alone — and then cement the
	// loss with a fresh checkpoint. Refuse loudly.
	if !hadCheckpoint && (l.StartLSN() > 0 || len(scanned.Records) > 0) {
		return fail(fmt.Errorf("server: WAL holds history (start LSN %d, %d records) but no checkpoint found in %s — refusing to recover a partial database", l.StartLSN(), len(scanned.Records), cfg.WALDir))
	}
	if hadCheckpoint && info.CheckpointLSN < l.StartLSN() {
		return fail(fmt.Errorf("server: checkpoint is stamped LSN %d but the WAL already starts at %d — the checkpoint predates a later truncation and records are missing", info.CheckpointLSN, l.StartLSN()))
	}
	// A checkpoint beyond the log's last LSN is recoverable — the
	// snapshot already contains everything through its stamp, and any
	// leftover records are skipped — but the log's sequence must be
	// advanced past the stamp first: a recreated-from-scratch log
	// would otherwise re-issue LSNs the checkpoint covers, and the
	// NEXT recovery would silently skip those freshly committed
	// records.
	if hadCheckpoint && info.CheckpointLSN > l.LastLSN() {
		if err := l.Truncate(info.CheckpointLSN); err != nil {
			return fail(err)
		}
	}

	switch {
	case db == nil && bootstrap != nil:
		// Fresh directory (the guard above proved the WAL is empty).
		if db, err = bootstrap(); err != nil {
			return fail(err)
		}
		info.Bootstrapped = true
	case db == nil:
		db = storage.NewDatabase()
	}

	// Redo the tail past the checkpoint through the shared applier,
	// then flush: completed frames parked above a stamp gap (the gap's
	// commit died with the log) still publish, in stamp order.
	applier := NewApplier(db, defs, info.CheckpointLSN, checkpointStamp)
	for i := range scanned.Records {
		if scanned.Records[i].LSN <= info.CheckpointLSN {
			continue
		}
		if err := applier.Apply(scanned.Records[i]); err != nil {
			return fail(err)
		}
	}
	if err := applier.Flush(); err != nil {
		return fail(err)
	}
	defs = applier.Defs()
	info.Replayed = applier.OpsApplied()

	// An unterminated frame at the tail was discarded from replay, but
	// its records are still physically in the log — and new commits
	// would append AFTER them, so the next recovery's framing pass
	// would swallow those commits into the dead frame. Truncate the
	// frame away before any append can land.
	if applier.FrameOpen() {
		if err := l.TruncateTail(applier.CommittedLSN()); err != nil {
			return fail(err)
		}
		info.DanglingTxn = true
	}

	s := New(db, cfg)
	buffered, peak := applier.ReorderStats()
	s.reorderBuffered.Store(buffered)
	s.reorderPeak.Store(peak)
	for _, def := range defs {
		if _, err := s.mgr.EnsureBuilt(def); err != nil {
			return fail(err)
		}
	}
	info.IndexesRebuilt = len(defs)

	// The sink attaches only now: replayed mutations must not be
	// re-logged, and no session can open before Recover returns. A
	// replica gets the log WITHOUT the sink — its mutations arrive
	// pre-logged from the primary's stream, and re-logging each applied
	// record would double every write; Promote attaches the sink when
	// the replica opens for writes.
	if cfg.Replica {
		s.setWAL(l, cfg.WALDir)
	} else {
		s.attachWAL(l, cfg.WALDir)
	}

	// The capture sidecar is a warm-start cache, not data: a corrupt
	// one must not block recovery of an otherwise-healthy server. The
	// tuner just relearns the workload from live traffic.
	if states, err := persist.LoadCaptureFile(filepath.Join(cfg.WALDir, captureFile)); err == nil {
		info.CaptureRestored = s.capture.Import(states)
	} else if !os.IsNotExist(err) {
		info.CaptureError = err
	}

	if !hadCheckpoint {
		// First run (or crash before the initial checkpoint): write one
		// now so the bootstrap data is durable before traffic arrives.
		if err := s.Checkpoint(); err != nil {
			return fail(err)
		}
	}
	return s, info, nil
}

func addDef(defs []xindex.Definition, def xindex.Definition) []xindex.Definition {
	key := def.Key()
	for _, d := range defs {
		if d.Key() == key {
			return defs
		}
	}
	return append(defs, def)
}

func removeDef(defs []xindex.Definition, def xindex.Definition) []xindex.Definition {
	key := def.Key()
	for i, d := range defs {
		if d.Key() == key {
			return append(defs[:i], defs[i+1:]...)
		}
	}
	return defs
}

// attachWAL wires the log under the server: every table's change feed
// gains a sink that appends the mutation to the log (buffered; the
// statement's group-commit fsync makes it durable), so the WAL sees
// exactly the logical events the statistics keeper and online indexes
// see. Changes published by transaction commits (Change.Txn) are
// skipped: the commit already appended them itself, framed, inside the
// publish lock (txnPrepare), and re-logging them here would double
// every transactional write on replay.
func (s *Server) attachWAL(l *wal.Log, dir string) {
	s.setWAL(l, dir)
	s.attachSink()
}

// setWAL hands the server its log without a change-feed sink — the
// replica configuration, where every record arrives from the primary's
// stream already logged. Promote upgrades to a full attachWAL. The log
// joins the server's metrics registry here, on both paths.
func (s *Server) setWAL(l *wal.Log, dir string) {
	s.wal = l
	s.walDir = dir
	l.InstrumentWith(s.met.reg)
}

// attachSink subscribes the WAL sink to every table's change feed.
func (s *Server) attachSink() {
	for _, name := range s.db.TableNames() {
		tbl, err := s.db.Table(name)
		if err != nil {
			continue
		}
		t := tbl
		id := t.Subscribe(func(c storage.Change) {
			if c.Txn {
				return
			}
			// Append errors are sticky inside the log; the committing
			// statement surfaces them. A copy-on-write replacement
			// arrives as a Replaced remove+insert pair under one table
			// lock hold; only the insert half is logged, as a single
			// atomic RecDocReplace, so no crash can tear the pair.
			switch {
			case c.Kind == storage.DocInserted && c.Replaced:
				s.wal.AppendDocReplace(t.Name, c.Doc, c.LSN)
			case c.Kind == storage.DocInserted:
				s.wal.AppendDocInsert(t.Name, c.Doc, c.LSN)
			case c.Kind == storage.DocRemoved && !c.Replaced:
				s.wal.AppendDocRemove(t.Name, c.Doc.DocID, c.LSN)
			}
		})
		s.walSubs = append(s.walSubs, walSub{tbl: t, id: id})
	}
}

// WAL returns the server's write-ahead log (nil without durability).
func (s *Server) WAL() *wal.Log { return s.wal }

// Checkpoint writes an LSN-stamped snapshot of the database and
// catalog plus the workload-capture sidecar, then truncates the WAL:
// replay time is bounded by the traffic since the last checkpoint, not
// since process start. It serializes with the tuning loop (index
// lifecycle changes land entirely before or after the checkpoint) and
// holds the commit gate exclusively while the snapshot streams out, so
// transaction commits pause; queries and statement execution proceed.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return ErrNoWAL
	}
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is Checkpoint under an already-held loopMu (the
// autonomous loop checkpoints from its own tick).
func (s *Server) checkpointLocked() error {
	s.commitGate.Lock()
	defer s.commitGate.Unlock()
	// Both held: no transaction can publish (commitGate) and no index
	// lifecycle changes (loopMu) can append, so LastLSN is exactly the
	// state the snapshot captures.
	lsn := s.wal.LastLSN()
	// With the commit gate held, no commit is mid-publish: the watermark
	// equals the allocator and stamps issued after the checkpoint are
	// strictly greater — exactly what the applier's duplicate-stamp
	// dedup relies on at the next recovery.
	if err := persist.SaveCheckpointFile(filepath.Join(s.walDir, checkpointFile), s.db, s.cat.Definitions(), lsn, s.db.Watermark()); err != nil {
		return err
	}
	if err := persist.SaveCaptureFile(filepath.Join(s.walDir, captureFile), s.capture.Export()); err != nil {
		return err
	}
	// With an archive configured, the checkpoint joins it under an
	// LSN-stamped name before the log truncates: paired with the
	// archived WAL segments (Truncate moves rather than deletes them),
	// any archived checkpoint plus the records past its stamp can
	// rebuild the image at any committed LSN — see RestoreToLSN.
	if dir := s.wal.ArchiveDir(); dir != "" {
		if _, err := persist.ArchiveCheckpoint(filepath.Join(s.walDir, checkpointFile), dir, lsn); err != nil {
			return err
		}
	}
	if err := s.wal.Truncate(lsn); err != nil {
		return err
	}
	s.met.checkpoints.Inc()
	return nil
}
