package server

import (
	"fmt"

	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xindex"
)

// Applier applies a WAL record stream to a database incrementally,
// enforcing the transaction framing: document records between a
// RecTxnBegin and its matching RecTxnCommit buffer and publish only
// when the commit record arrives, all at once, and a frame that never
// commits leaves no trace. It is the one redo path shared by crash
// recovery (Recover feeds it the scanned tail), replication followers
// (which feed it records as they stream in), and point-in-time restore
// (RestoreToLSN feeds it archived history up to the target).
//
// Records must arrive in LSN order with no gaps; a record at or below
// AppliedLSN is skipped silently (the dedup a follower needs when it
// re-streams from its last durable position). An Applier is not safe
// for concurrent use — callers serialize Apply against their own
// reads.
type Applier struct {
	db   *storage.Database
	defs []xindex.Definition
	// onIndex, when set, materializes index lifecycle changes live as
	// they apply (followers build indexes as the records arrive);
	// without it the definition list just folds the changes in and the
	// caller rebuilds at the end (recovery, restore).
	onIndex func(create bool, def xindex.Definition) error

	applied   uint64 // LSN of the last record consumed
	committed uint64 // LSN of the last record whose effects are fully published
	ops       int    // document/index operations actually applied

	pending    []wal.Record // buffered ops of the open transaction frame
	inTxn      bool
	txnID      uint64
	frameStart uint64 // LSN of the open frame's begin record
}

// NewApplier starts an applier over db whose state already reflects
// every record through afterLSN (a checkpoint's stamp, or zero for an
// empty database). defs is the index definition list as of afterLSN;
// the applier folds create/drop records into its own copy.
func NewApplier(db *storage.Database, defs []xindex.Definition, afterLSN uint64) *Applier {
	return &Applier{
		db:        db,
		defs:      append([]xindex.Definition(nil), defs...),
		applied:   afterLSN,
		committed: afterLSN,
	}
}

// SetIndexHook installs a callback invoked as index create (true) and
// drop (false) records apply, letting a live follower materialize the
// catalog change immediately instead of at the end of replay.
func (a *Applier) SetIndexHook(h func(create bool, def xindex.Definition) error) {
	a.onIndex = h
}

// AppliedLSN is the LSN of the last record consumed — including
// records buffered inside a still-open transaction frame.
func (a *Applier) AppliedLSN() uint64 { return a.applied }

// CommittedLSN is the LSN of the last record whose effects are fully
// published: equal to AppliedLSN at a frame boundary, and the LSN just
// before the open frame's begin record while one is buffering. This is
// the position a promotion truncates the log back to.
func (a *Applier) CommittedLSN() uint64 { return a.committed }

// FrameOpen reports that a transaction frame is buffering — a begin
// record arrived with no matching commit yet.
func (a *Applier) FrameOpen() bool { return a.inTxn }

// OpsApplied is the number of document and index operations published.
func (a *Applier) OpsApplied() int { return a.ops }

// Defs returns the index definition list with every applied
// create/drop folded in.
func (a *Applier) Defs() []xindex.Definition { return a.defs }

// Apply consumes one record. Records at or below AppliedLSN are
// skipped; a gap in the sequence is an error (the caller lost or
// reordered records).
func (a *Applier) Apply(rec wal.Record) error {
	if rec.LSN <= a.applied {
		return nil
	}
	if rec.LSN != a.applied+1 {
		return fmt.Errorf("server: apply LSN %d after %d: records missing", rec.LSN, a.applied)
	}
	a.applied = rec.LSN
	switch rec.Kind {
	case wal.RecTxnBegin:
		if a.inTxn {
			return fmt.Errorf("server: replay LSN %d: txn-begin %d inside open txn %d", rec.LSN, rec.TxnID, a.txnID)
		}
		a.inTxn, a.txnID, a.frameStart = true, rec.TxnID, rec.LSN
		a.pending = a.pending[:0]
	case wal.RecTxnCommit:
		if !a.inTxn || rec.TxnID != a.txnID {
			return fmt.Errorf("server: replay LSN %d: txn-commit %d without matching begin", rec.LSN, rec.TxnID)
		}
		for i := range a.pending {
			if err := a.applyOp(&a.pending[i]); err != nil {
				return err
			}
		}
		a.inTxn = false
		a.pending = a.pending[:0]
		a.committed = rec.LSN
	default:
		if a.inTxn {
			a.pending = append(a.pending, rec)
		} else {
			if err := a.applyOp(&rec); err != nil {
				return err
			}
			a.committed = rec.LSN
		}
	}
	return nil
}

func (a *Applier) table(name string) (*storage.Table, error) {
	if tbl, err := a.db.Table(name); err == nil {
		return tbl, nil
	}
	return a.db.CreateTable(name)
}

// applyOp publishes one non-framing record. A copy-on-write update is
// one RecDocReplace record applied as a storage.Replace, preserving
// the document's insertion-order position — the atomicity lives in the
// record itself, so no tear can leave the remove half applied without
// its insert (a state that never existed in memory).
func (a *Applier) applyOp(rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecDocInsert:
		tbl, err := a.table(rec.Table)
		if err != nil {
			return err
		}
		if err := tbl.InsertAt(rec.Doc, rec.DocID); err != nil {
			return fmt.Errorf("server: replay LSN %d: %w", rec.LSN, err)
		}
	case wal.RecDocReplace:
		tbl, err := a.table(rec.Table)
		if err != nil {
			return err
		}
		if !tbl.Replace(rec.DocID, rec.Doc) {
			return fmt.Errorf("server: replay LSN %d: replace of missing doc %d in %s", rec.LSN, rec.DocID, rec.Table)
		}
	case wal.RecDocRemove:
		tbl, err := a.table(rec.Table)
		if err != nil {
			return err
		}
		tbl.Delete(rec.DocID)
	case wal.RecIndexCreate:
		a.defs = addDef(a.defs, rec.Def)
		if a.onIndex != nil {
			if err := a.onIndex(true, rec.Def); err != nil {
				return err
			}
		}
	case wal.RecIndexDrop:
		a.defs = removeDef(a.defs, rec.Def)
		if a.onIndex != nil {
			if err := a.onIndex(false, rec.Def); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("server: replay LSN %d: unknown record kind %v", rec.LSN, rec.Kind)
	}
	a.ops++
	return nil
}
