package server

import (
	"fmt"
	"sort"

	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xindex"
)

// Applier applies a WAL record stream to a database incrementally,
// enforcing the transaction framing: document records between a
// RecTxnBegin and its matching RecTxnCommit buffer and publish only
// when the commit record arrives, all at once, and a frame that never
// commits leaves no trace. It is the one redo path shared by crash
// recovery (Recover feeds it the scanned tail), replication followers
// (which feed it records as they stream in), and point-in-time restore
// (RestoreToLSN feeds it archived history up to the target).
//
// Because commits on disjoint tables append to the log outside any
// shared lock, log order and commit-stamp order may differ. The
// applier restores stamp order with a reorder buffer: a completed
// frame whose stamp is not yet next in sequence parks until the gap
// below it closes, then the whole run drains in stamp order. Frames
// that share a table are appended under that table's commit lock, so
// they can never arrive stamp-inverted — only commuting
// (disjoint-table) frames park. Unstamped records (stamp 0, from
// legacy or synthetic logs) apply immediately in arrival order.
//
// Records must arrive in LSN order with no gaps; a record at or below
// AppliedLSN is skipped silently (the dedup a follower needs when it
// re-streams from its last durable position). An Applier is not safe
// for concurrent use — callers serialize Apply against their own
// reads. Callers must Flush before reading final state: completed
// frames above a stamp gap (whose lower stamp died with the log) are
// still parked until then.
type Applier struct {
	db   *storage.Database
	defs []xindex.Definition
	// onIndex, when set, materializes index lifecycle changes live as
	// they apply (followers build indexes as the records arrive);
	// without it the definition list just folds the changes in and the
	// caller rebuilds at the end (recovery, restore).
	onIndex func(create bool, def xindex.Definition) error

	applied   uint64 // LSN of the last record consumed
	committed uint64 // LSN of the last record consumed at a frame boundary
	ops       int    // document/index operations actually applied

	pending    []wal.Record // buffered ops of the open transaction frame
	inTxn      bool
	txnID      uint64
	frameStart uint64 // LSN of the open frame's begin record

	nextStamp uint64                  // the stamp the next in-order frame must carry
	reorder   map[uint64][]wal.Record // parked complete frames by stamp
	reorderN  uint64                  // frames that ever parked
	reorderPk uint64                  // max frames parked at once
}

// NewApplier starts an applier over db whose state already reflects
// every record through afterLSN (a checkpoint's position, or zero for
// an empty database) and every commit stamp through afterStamp (the
// checkpoint's watermark). defs is the index definition list as of
// afterLSN; the applier folds create/drop records into its own copy.
func NewApplier(db *storage.Database, defs []xindex.Definition, afterLSN, afterStamp uint64) *Applier {
	return &Applier{
		db:        db,
		defs:      append([]xindex.Definition(nil), defs...),
		applied:   afterLSN,
		committed: afterLSN,
		nextStamp: afterStamp + 1,
		reorder:   make(map[uint64][]wal.Record),
	}
}

// SetIndexHook installs a callback invoked as index create (true) and
// drop (false) records apply, letting a live follower materialize the
// catalog change immediately instead of at the end of replay.
func (a *Applier) SetIndexHook(h func(create bool, def xindex.Definition) error) {
	a.onIndex = h
}

// AppliedLSN is the LSN of the last record consumed — including
// records buffered inside a still-open transaction frame.
func (a *Applier) AppliedLSN() uint64 { return a.applied }

// CommittedLSN is the LSN of the last record consumed at a frame
// boundary: equal to AppliedLSN when no frame is open, and the LSN
// just before the open frame's begin record while one is buffering.
// Frames parked in the reorder buffer count as committed — they are
// guaranteed to publish at Flush — so this is the position a promotion
// (which flushes first) truncates the log back to.
func (a *Applier) CommittedLSN() uint64 { return a.committed }

// FrameOpen reports that a transaction frame is buffering — a begin
// record arrived with no matching commit yet.
func (a *Applier) FrameOpen() bool { return a.inTxn }

// OpsApplied is the number of document and index operations published.
func (a *Applier) OpsApplied() int { return a.ops }

// ReorderStats reports how many completed frames arrived ahead of a
// stamp gap and parked in the reorder buffer, and the largest number
// parked at once.
func (a *Applier) ReorderStats() (buffered, peak uint64) { return a.reorderN, a.reorderPk }

// Defs returns the index definition list with every applied
// create/drop folded in.
func (a *Applier) Defs() []xindex.Definition { return a.defs }

// Apply consumes one record. Records at or below AppliedLSN are
// skipped; a gap in the sequence is an error (the caller lost or
// reordered records).
func (a *Applier) Apply(rec wal.Record) error {
	if rec.LSN <= a.applied {
		return nil
	}
	if rec.LSN != a.applied+1 {
		return fmt.Errorf("server: apply LSN %d after %d: records missing", rec.LSN, a.applied)
	}
	a.applied = rec.LSN
	switch rec.Kind {
	case wal.RecTxnBegin:
		if a.inTxn {
			return fmt.Errorf("server: replay LSN %d: txn-begin %d inside open txn %d", rec.LSN, rec.TxnID, a.txnID)
		}
		a.inTxn, a.txnID, a.frameStart = true, rec.TxnID, rec.LSN
		a.pending = a.pending[:0]
	case wal.RecTxnCommit:
		if !a.inTxn || rec.TxnID != a.txnID {
			return fmt.Errorf("server: replay LSN %d: txn-commit %d without matching begin", rec.LSN, rec.TxnID)
		}
		frame := append([]wal.Record(nil), a.pending...)
		a.inTxn = false
		a.pending = a.pending[:0]
		if err := a.enqueueFrame(rec.Stamp, rec.LSN, frame); err != nil {
			return err
		}
		a.committed = rec.LSN
	case wal.RecDocInsert, wal.RecDocReplace, wal.RecDocRemove:
		if a.inTxn {
			a.pending = append(a.pending, rec)
			return nil
		}
		// A bare document record is a self-framing single-op commit.
		if err := a.enqueueFrame(rec.Stamp, rec.LSN, []wal.Record{rec}); err != nil {
			return err
		}
		a.committed = rec.LSN
	default:
		if a.inTxn {
			return fmt.Errorf("server: replay LSN %d: record kind %v inside txn frame", rec.LSN, rec.Kind)
		}
		if err := a.applyIndex(&rec); err != nil {
			return err
		}
		a.committed = rec.LSN
	}
	return nil
}

// enqueueFrame routes one completed frame: unstamped frames apply
// immediately in arrival order; stamped frames apply when their stamp
// is next in sequence (then drain any parked successors) and park
// otherwise. Stamps below the sequence are duplicates of
// already-applied commits and are dropped.
func (a *Applier) enqueueFrame(stamp, lsn uint64, frame []wal.Record) error {
	if stamp == 0 {
		return a.applyLegacyFrame(frame)
	}
	if stamp < a.nextStamp {
		return nil
	}
	if stamp > a.nextStamp {
		a.reorder[stamp] = frame
		a.reorderN++
		if n := uint64(len(a.reorder)); n > a.reorderPk {
			a.reorderPk = n
		}
		return nil
	}
	if err := a.applyFrame(stamp, lsn, frame); err != nil {
		return err
	}
	a.nextStamp = stamp + 1
	for {
		next, ok := a.reorder[a.nextStamp]
		if !ok {
			return nil
		}
		delete(a.reorder, a.nextStamp)
		if err := a.applyFrame(a.nextStamp, 0, next); err != nil {
			return err
		}
		a.nextStamp++
	}
}

// Flush publishes every frame still parked in the reorder buffer, in
// ascending stamp order. A gap in the stamps means the missing commit
// died with the log before its records were appended; since frames
// sharing a table can never arrive stamp-inverted, the missing commit
// commutes with everything parked above it and skipping the gap yields
// a consistent history. Callers must Flush before reading final state
// (end of recovery and restore, promotion).
func (a *Applier) Flush() error {
	if len(a.reorder) == 0 {
		return nil
	}
	stamps := make([]uint64, 0, len(a.reorder))
	for s := range a.reorder {
		stamps = append(stamps, s)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	for _, s := range stamps {
		frame := a.reorder[s]
		delete(a.reorder, s)
		if err := a.applyFrame(s, 0, frame); err != nil {
			return err
		}
		if s >= a.nextStamp {
			a.nextStamp = s + 1
		}
	}
	return nil
}

func (a *Applier) table(name string) (*storage.Table, error) {
	if tbl, err := a.db.Table(name); err == nil {
		return tbl, nil
	}
	return a.db.CreateTable(name)
}

// applyFrame publishes one committed frame at its recorded stamp via
// storage.ApplyCommitted: document IDs are explicit, no validation
// runs, and the database's stamp allocator advances to the stamp so
// post-recovery commits continue the sequence.
func (a *Applier) applyFrame(stamp, lsn uint64, frame []wal.Record) error {
	ops := make([]storage.TxOp, 0, len(frame))
	for i := range frame {
		rec := &frame[i]
		// Auto-create the table first: replay may precede any checkpoint
		// that knew about it.
		if _, err := a.table(rec.Table); err != nil {
			return err
		}
		switch rec.Kind {
		case wal.RecDocInsert:
			ops = append(ops, storage.TxOp{Table: rec.Table, Kind: storage.TxInsert, DocID: rec.DocID, Doc: rec.Doc})
		case wal.RecDocReplace:
			ops = append(ops, storage.TxOp{Table: rec.Table, Kind: storage.TxReplace, DocID: rec.DocID, Doc: rec.Doc})
		case wal.RecDocRemove:
			ops = append(ops, storage.TxOp{Table: rec.Table, Kind: storage.TxDelete, DocID: rec.DocID})
		default:
			return fmt.Errorf("server: replay LSN %d: record kind %v inside txn frame", rec.LSN, rec.Kind)
		}
	}
	if err := a.db.ApplyCommitted(stamp, ops); err != nil {
		if lsn != 0 {
			return fmt.Errorf("server: replay LSN %d: %w", lsn, err)
		}
		return fmt.Errorf("server: replay stamp %d: %w", stamp, err)
	}
	a.ops += len(ops)
	return nil
}

// applyLegacyFrame publishes an unstamped frame through the table's
// live mutation paths, in arrival order — the pre-stamp log format and
// synthetic test logs.
func (a *Applier) applyLegacyFrame(frame []wal.Record) error {
	for i := range frame {
		rec := &frame[i]
		tbl, err := a.table(rec.Table)
		if err != nil {
			return err
		}
		switch rec.Kind {
		case wal.RecDocInsert:
			if err := tbl.InsertAt(rec.Doc, rec.DocID); err != nil {
				return fmt.Errorf("server: replay LSN %d: %w", rec.LSN, err)
			}
		case wal.RecDocReplace:
			if !tbl.Replace(rec.DocID, rec.Doc) {
				return fmt.Errorf("server: replay LSN %d: replace of missing doc %d in %s", rec.LSN, rec.DocID, rec.Table)
			}
		case wal.RecDocRemove:
			tbl.Delete(rec.DocID)
		default:
			return fmt.Errorf("server: replay LSN %d: record kind %v inside txn frame", rec.LSN, rec.Kind)
		}
		a.ops++
	}
	return nil
}

// applyIndex publishes one index lifecycle record.
func (a *Applier) applyIndex(rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecIndexCreate:
		a.defs = addDef(a.defs, rec.Def)
		if a.onIndex != nil {
			if err := a.onIndex(true, rec.Def); err != nil {
				return err
			}
		}
	case wal.RecIndexDrop:
		a.defs = removeDef(a.defs, rec.Def)
		if a.onIndex != nil {
			if err := a.onIndex(false, rec.Def); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("server: replay LSN %d: unknown record kind %v", rec.LSN, rec.Kind)
	}
	a.ops++
	return nil
}
