package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xmltree"
)

func bootstrapTwoTables(n int) func() (*storage.Database, error) {
	return func() (*storage.Database, error) {
		db := fixtureDB(n) // SECURITY
		ord := db.MustCreateTable("ORDERS")
		for i := 0; i < n; i++ {
			ord.Insert(secDoc(fmt.Sprintf("O%05d", i), "Orders", float64(i%10)))
		}
		return db, nil
	}
}

// TestTxnCommitRollbackVisibility: an explicit transaction's writes
// are invisible until Commit, and Rollback leaves no trace.
func TestTxnCommitRollbackVisibility(t *testing.T) {
	srv := New(fixtureDB(10), Config{})
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	tx, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Execute(`insert into SECURITY value <Security><Symbol>TXN-A</Symbol><Yield>1.5</Yield></Security>`); err != nil {
		t.Fatal(err)
	}
	// Inside: visible. Outside: not yet.
	res, err := tx.Execute(`for $s in SECURITY('SDOC')/Security where $s/Symbol = "TXN-A" return $s`)
	if err != nil || len(res.Refs) != 1 {
		t.Fatalf("txn does not see own write: %v, %v", res, err)
	}
	out, err := sess.Execute(`for $s in SECURITY('SDOC')/Security where $s/Symbol = "TXN-A" return $s`)
	if err != nil || len(out.Refs) != 0 {
		t.Fatalf("uncommitted write visible outside txn: %v, %v", out, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out, err = sess.Execute(`for $s in SECURITY('SDOC')/Security where $s/Symbol = "TXN-A" return $s`)
	if err != nil || len(out.Refs) != 1 {
		t.Fatalf("committed write not visible: %v, %v", out, err)
	}

	// Rollback path.
	tx2, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Execute(`delete from SECURITY where /Security[Symbol="TXN-A"]`); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	out, err = sess.Execute(`for $s in SECURITY('SDOC')/Security where $s/Symbol = "TXN-A" return $s`)
	if err != nil || len(out.Refs) != 1 {
		t.Fatalf("rolled-back delete took effect: %v, %v", out, err)
	}
	if _, err := tx2.Execute(`for $s in SECURITY('SDOC')/Security return $s`); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("execute on finished txn: %v, want ErrTxnFinished", err)
	}
}

// TestTxnConflictCounters: first-writer-wins surfaces as
// storage.ErrConflict on the second committer and the server's
// transaction counters track commits, aborts, and conflicts.
func TestTxnConflictCounters(t *testing.T) {
	srv := New(fixtureDB(10), Config{})
	defer srv.Close()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	base := srv.TxnStats()

	t1, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Execute(`update SECURITY set Yield = 11.0 where /Security[Symbol="S00003"]`); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Execute(`update SECURITY set Yield = 22.0 where /Security[Symbol="S00003"]`); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, storage.ErrConflict) {
		t.Fatalf("second committer err = %v, want storage.ErrConflict", err)
	}

	st := srv.TxnStats()
	if st.Commits != base.Commits+1 {
		t.Errorf("Commits = %d, want %d", st.Commits, base.Commits+1)
	}
	if st.Conflicts != base.Conflicts+1 {
		t.Errorf("Conflicts = %d, want %d", st.Conflicts, base.Conflicts+1)
	}
	if st.Aborts != base.Aborts+1 {
		t.Errorf("Aborts = %d, want %d", st.Aborts, base.Aborts+1)
	}

	// The auto-commit path retries conflicts away: concurrent
	// single-statement updates of one document all succeed.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				raw := fmt.Sprintf(`update SECURITY set Yield = %d.%d where /Security[Symbol="S00005"]`, w, i)
				if _, err := sess.Execute(raw); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestTxnWriterScalingDisjointTables: concurrent writers on distinct
// tables commit in parallel with no global writer lock; every commit
// succeeds with zero conflicts, and the per-table insert counts and
// stats come out exact.
func TestTxnWriterScalingDisjointTables(t *testing.T) {
	const writers = 8
	const perWriter = 30
	db := fixtureDB(10)
	var tbls []*storage.Table
	for w := 0; w < writers; w++ {
		tbls = append(tbls, db.MustCreateTable(fmt.Sprintf("T%02d", w)))
	}
	srv := New(db, Config{MaxConcurrent: writers, QueueDepth: 4 * writers})
	defer srv.Close()

	base := srv.TxnStats()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := srv.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				raw := fmt.Sprintf(`insert into T%02d value <Security><Symbol>W%d-%03d</Symbol><Yield>%d.5</Yield></Security>`, w, w, i, i%9)
				res, err := sess.Execute(raw)
				for errors.Is(err, ErrOverloaded) {
					res, err = sess.Execute(raw)
				}
				if err != nil {
					t.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
				_ = res
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w, tbl := range tbls {
		if tbl.DocCount() != perWriter {
			t.Errorf("table T%02d holds %d docs, want %d", w, tbl.DocCount(), perWriter)
		}
	}
	st := srv.TxnStats()
	if got := st.Commits - base.Commits; got != writers*perWriter {
		t.Errorf("Commits = %d, want %d", got, writers*perWriter)
	}
	if st.Conflicts != base.Conflicts {
		t.Errorf("disjoint-table writers conflicted %d times", st.Conflicts-base.Conflicts)
	}
}

// TestRecoverInterleavedTxns is the transactional durability
// acceptance test: two writers commit framed multi-operation
// transactions on different tables concurrently (their WAL frames
// interleave at batch granularity), the process "crashes" with one
// more transaction's frame appended but never terminated, and recovery
// reproduces exactly the committed transactions — the unterminated
// frame leaves no trace, and the recovered image is bit-identical to
// the pre-crash committed state.
func TestRecoverInterleavedTxns(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), bootstrapTwoTables(20))
	if err != nil {
		t.Fatal(err)
	}

	const perWriter = 15
	tables := []string{"SECURITY", "ORDERS"}
	var wg sync.WaitGroup
	for w := range tables {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			table := tables[w]
			sess, err := srv.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				tx, err := sess.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				// Two inserts plus an update of the first: the update
				// folds into the buffered insert's image, so the WAL
				// frame carries two operation records per transaction.
				for j := 0; j < 2; j++ {
					raw := fmt.Sprintf(`insert into %s value <Security><Symbol>TX%d-%03d-%d</Symbol><Yield>3.5</Yield></Security>`, table, w, i, j)
					if _, err := tx.Execute(raw); err != nil {
						t.Error(err)
						tx.Rollback()
						return
					}
				}
				raw := fmt.Sprintf(`update %s set Yield = 9.9 where /Security[Symbol="TX%d-%03d-0"]`, table, w, i)
				if _, err := tx.Execute(raw); err != nil {
					t.Error(err)
					tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := dbBytes(t, srv)

	// The crash: one more transaction got its begin frame and first
	// operation into the log, but the commit record never made it —
	// exactly what a tear inside AppendTxn's batch leaves behind after
	// the CRC tail-scan.
	doc, err := xmltree.ParseString(`<Security><Symbol>TORN</Symbol><Yield>6.66</Yield></Security>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.DocID = 999999
	ins, err := wal.EncodeDocInsert("SECURITY", doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := srv.WAL()
	lsn, err := l.AppendTxn([][]byte{wal.EncodeTxnBegin(777), ins})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the WAL is all that survives.
	srv = nil

	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Fatalf("recovered image (%d bytes) differs from committed pre-crash state (%d bytes)", len(got), len(want))
	}
	// Replayed counts operations, not framing records, and the
	// unterminated transaction contributes nothing.
	wantOps := len(tables) * perWriter * 2
	if info.Replayed != wantOps {
		t.Fatalf("Replayed = %d, want %d (2 ops per committed txn, dangling frame dropped)", info.Replayed, wantOps)
	}

	// A second crash-free recovery is idempotent: replaying the same
	// committed prefix again lands on the same bytes.
	wantHealed := dbBytes(t, srv2)
	srv2.Close()
	srv3, _, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if got := dbBytes(t, srv3); !bytes.Equal(got, wantHealed) {
		t.Fatal("second recovery diverges from first")
	}
}
