package server

import (
	"xixa/internal/persist"
)

// OpenSnapshot restores a server from a persist snapshot: the
// database loads from disk and every persisted index definition is
// rebuilt and swapped into the catalog before the first session opens,
// so a restarted daemon serves index plans immediately instead of
// coming up cold and waiting for the tuning loop to rediscover its
// configuration. The rebuilt indexes go through the online build path,
// leaving them feed-maintained exactly like tuning-loop-built ones.
//
// OpenSnapshot is the non-durable warm start: mutations after the
// snapshot live only in memory. Daemons that must survive a crash
// start through Recover instead, which layers the write-ahead log
// under the same snapshot format.
func OpenSnapshot(path string, cfg Config) (*Server, error) {
	db, defs, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	s := New(db, cfg)
	for _, def := range defs {
		if _, err := s.mgr.EnsureBuilt(def); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SaveSnapshot persists the database and the materialized index
// catalog (definitions only — contents rebuild on load). The commit
// gate is held exclusively for the duration, so transaction commits
// pause while the snapshot streams out; queries proceed.
func (s *Server) SaveSnapshot(path string) error {
	s.commitGate.Lock()
	defer s.commitGate.Unlock()
	return persist.SaveFile(path, s.db, s.cat.Definitions())
}
