package server

// Stamp-order replay tests: commits on disjoint tables append to the
// WAL outside any shared lock, so log order and commit-stamp order may
// differ — replay must restore stamp order. The property test drives
// random concurrent interleavings and checks recovery is bit-identical
// and applies in stamp order; the unit test hand-crafts out-of-order
// and gapped streams to pin the reorder buffer's behavior exactly.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"xixa/internal/persist"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xmltree"
)

// TestStampOrderReplayProperty runs concurrent committers over
// disjoint tables — the interleaving of their WAL frames is whatever
// the scheduler produced — and asserts the two invariants the commit
// pipeline promises:
//
//  1. a fresh Recover of the log is bit-identical to the live image,
//  2. replay publishes frames in commit-stamp order, with per-table
//     stamps appearing in log order (same-table frames append under the
//     table's commit lock and can never arrive stamp-inverted).
func TestStampOrderReplayProperty(t *testing.T) {
	const writers, perWriter = 4, 10
	dir := t.TempDir()
	srv, _, err := Recover(durableCfg(dir), func() (*storage.Database, error) {
		db := storage.NewDatabase()
		for w := 0; w < writers; w++ {
			tbl := db.MustCreateTable(fmt.Sprintf("T%02d", w))
			doc, perr := xmltree.ParseString(`<Security><Symbol>SEED</Symbol><Yield>1.5</Yield></Security>`)
			if perr != nil {
				return nil, perr
			}
			tbl.Insert(doc)
		}
		return db, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := srv.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				tx, err := sess.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 2; j++ {
					raw := fmt.Sprintf(`insert into T%02d value <Security><Symbol>P%d-%03d-%d</Symbol><Yield>2.5</Yield></Security>`, w, w, i, j)
					if _, err := tx.Execute(raw); err != nil {
						t.Error(err)
						tx.Rollback()
						return
					}
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := dbBytes(t, srv)
	wantWatermark := srv.DB().Watermark()
	srv = nil // crash: the checkpoint and WAL are all that survive

	// Replay the surviving log through a fresh applier with the table
	// feeds instrumented: every published change carries its commit
	// stamp, so the observed stamp sequence IS the publish order.
	l, scanned, err := wal.Open(WALPath(dir), wal.Options{Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	db, defs, chkLSN, chkStamp, err := persist.LoadCheckpointFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	db.AdvanceStamp(chkStamp)
	var published []uint64
	for _, name := range db.TableNames() {
		tbl, terr := db.Table(name)
		if terr != nil {
			t.Fatal(terr)
		}
		tbl.Subscribe(func(c storage.Change) {
			published = append(published, c.LSN)
		})
	}
	applier := NewApplier(db, defs, chkLSN, chkStamp)
	perTable := make(map[string][]uint64) // commit stamps in log order
	for i := range scanned.Records {
		rec := scanned.Records[i]
		if rec.LSN <= chkLSN {
			continue
		}
		if rec.Kind == wal.RecDocInsert || rec.Kind == wal.RecDocReplace || rec.Kind == wal.RecDocRemove {
			perTable[rec.Table] = append(perTable[rec.Table], rec.Stamp)
		}
		if err := applier.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := applier.Flush(); err != nil {
		t.Fatal(err)
	}

	for i := 1; i < len(published); i++ {
		if published[i] < published[i-1] {
			t.Fatalf("replay published stamp %d after %d: not stamp order", published[i], published[i-1])
		}
	}
	for name, stamps := range perTable {
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				t.Errorf("table %s: log order inverts stamps %d then %d", name, stamps[i-1], stamps[i])
			}
		}
	}
	if got := db.Watermark(); got != wantWatermark {
		t.Errorf("replayed watermark %d, want %d", got, wantWatermark)
	}
	var buf bytes.Buffer
	if err := persist.SaveDatabase(&buf, db, applier.Defs()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("instrumented replay image differs from live image")
	}

	// And the real recovery path agrees bit for bit.
	srv2, info, err := Recover(durableCfg(dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if info.Replayed == 0 {
		t.Error("recovery replayed nothing; the burst never reached the log")
	}
	if got := dbBytes(t, srv2); !bytes.Equal(got, want) {
		t.Error("recovered image differs from live image")
	}
}

// propDoc builds a one-node document with an explicit document ID, the
// shape replayed frames carry.
func propDoc(t *testing.T, sym string, id int64) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(`<Security><Symbol>` + sym + `</Symbol></Security>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.DocID = id
	return doc
}

// record decodes a payload at an LSN, as a streaming follower does.
func record(t *testing.T, lsn uint64, payload []byte) wal.Record {
	t.Helper()
	rec, err := wal.DecodePayload(lsn, payload)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestApplierReorder pins the reorder buffer's exact behavior on a
// hand-crafted stream: a frame arriving ahead of its stamp parks and
// drains when the gap closes, and Flush publishes parked frames across
// a true stamp gap (the missing commit died with the log) in ascending
// order.
func TestApplierReorder(t *testing.T) {
	t.Run("park-then-drain", func(t *testing.T) {
		db := storage.NewDatabase()
		db.MustCreateTable("A")
		db.MustCreateTable("B")
		var published []uint64
		for _, name := range []string{"A", "B"} {
			tbl, _ := db.Table(name)
			tbl.Subscribe(func(c storage.Change) { published = append(published, c.LSN) })
		}
		a := NewApplier(db, nil, 0, 0)

		// Log order inverts stamp order: table B's commit (stamp 2)
		// appended before table A's (stamp 1) — only possible because
		// the tables are disjoint.
		insB, err := wal.EncodeDocInsert("B", propDoc(t, "B1", 1), 2)
		if err != nil {
			t.Fatal(err)
		}
		insA, err := wal.EncodeDocInsert("A", propDoc(t, "A1", 1), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Apply(record(t, 1, insB)); err != nil {
			t.Fatal(err)
		}
		if got := len(published); got != 0 {
			t.Fatalf("frame ahead of its stamp published %d changes, want 0 (parked)", got)
		}
		if err := a.Apply(record(t, 2, insA)); err != nil {
			t.Fatal(err)
		}
		if want := []uint64{1, 2}; len(published) != 2 || published[0] != want[0] || published[1] != want[1] {
			t.Fatalf("published stamps %v, want %v", published, want)
		}
		if buf, peak := a.ReorderStats(); buf != 1 || peak != 1 {
			t.Fatalf("ReorderStats = (%d, %d), want (1, 1)", buf, peak)
		}
		if got := a.CommittedLSN(); got != 2 {
			t.Fatalf("CommittedLSN = %d, want 2", got)
		}
		for _, name := range []string{"A", "B"} {
			tbl, _ := db.Table(name)
			if tbl.DocCount() != 1 {
				t.Errorf("table %s holds %d docs, want 1", name, tbl.DocCount())
			}
		}
		if got := db.Watermark(); got != 2 {
			t.Errorf("watermark %d, want 2", got)
		}
	})

	t.Run("flush-across-gap", func(t *testing.T) {
		db := storage.NewDatabase()
		db.MustCreateTable("A")
		db.MustCreateTable("B")
		var published []uint64
		for _, name := range []string{"A", "B"} {
			tbl, _ := db.Table(name)
			tbl.Subscribe(func(c storage.Change) { published = append(published, c.LSN) })
		}
		a := NewApplier(db, nil, 0, 0)

		// Stamp 1 was allocated but its commit never reached the log
		// (crash between allocation and append): stamps 2 and 3 park
		// forever until Flush skips the gap.
		frame := func(txnID uint64, table, sym string, stamp uint64) [][]byte {
			ins, err := wal.EncodeDocInsert(table, propDoc(t, sym, 1), stamp)
			if err != nil {
				t.Fatal(err)
			}
			return [][]byte{wal.EncodeTxnBegin(txnID), ins, wal.EncodeTxnCommit(txnID, stamp)}
		}
		lsn := uint64(0)
		for _, payloads := range [][][]byte{frame(1, "B", "B1", 3), frame(2, "A", "A1", 2)} {
			for _, p := range payloads {
				lsn++
				if err := a.Apply(record(t, lsn, p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := len(published); got != 0 {
			t.Fatalf("gapped frames published %d changes before Flush, want 0", got)
		}
		if buf, peak := a.ReorderStats(); buf != 2 || peak != 2 {
			t.Fatalf("ReorderStats = (%d, %d), want (2, 2)", buf, peak)
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if want := []uint64{2, 3}; len(published) != 2 || published[0] != want[0] || published[1] != want[1] {
			t.Fatalf("Flush published stamps %v, want %v", published, want)
		}
		if got := a.CommittedLSN(); got != lsn {
			t.Fatalf("CommittedLSN = %d, want %d (parked frames count as committed)", got, lsn)
		}
	})
}
