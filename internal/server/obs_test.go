package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xixa/internal/obs"
)

// TestRegistryMatchesSessionTotals hammers one server from 8 sessions
// with a conflict-heavy mix (every writer updating the same hot
// document, plus inserts and point queries) and then requires the
// registry's counters to equal — exactly, not approximately — both
// TxnStats and the sums of the per-session counters. The registry
// handles ARE the server's counters, so any double-count or missed
// path shows up as an integer mismatch. Run under -race, this is also
// the concurrency soak for the lock-striped histograms and counters.
func TestRegistryMatchesSessionTotals(t *testing.T) {
	srv := New(fixtureDB(50), Config{MaxConcurrent: 8, QueueDepth: 64})
	defer srv.Close()
	srv.SetTraceSampleEvery(4)

	const nSess = 8
	const perSess = 40
	sessions := make([]*Session, nSess)
	for i := range sessions {
		sess, err := srv.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sessions[i] = sess
	}
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			for j := 0; j < perSess; j++ {
				var stmt string
				switch j % 4 {
				case 0, 1:
					// Every session updates the same document: guaranteed
					// first-writer-wins contention, hence retries/backoff.
					stmt = fmt.Sprintf(`update SECURITY set Yield = %d.25 where /Security[Symbol="S00001"]`, j%9)
				case 2:
					stmt = pointQuery((i*7 + j) % 50)
				default:
					stmt = fmt.Sprintf(`insert into SECURITY value <Security><Symbol>OBS-%d-%d</Symbol><Yield>1.5</Yield></Security>`, i, j)
				}
				// Retry-exhaustion conflicts may surface; they are part of
				// what the counters must agree on.
				sess.Execute(stmt)
			}
		}(i, sess)
	}
	wg.Wait()

	vals := obs.Values(srv.Metrics().Snapshot())
	v := func(name string) uint64 { return uint64(vals[name]) }

	var executed, errs, retries, backoffNs int64
	for _, sess := range sessions {
		_, e, f := sess.Stats()
		executed += e
		errs += f
		r, b := sess.RetryStats()
		retries += r
		backoffNs += b.Nanoseconds()
	}

	if got, want := v("xixa_statements_total"), uint64(executed); got != want {
		t.Errorf("statements counter %d, session sum %d", got, want)
	}
	if got, want := v("xixa_statement_errors_total"), uint64(errs); got != want {
		t.Errorf("statement errors counter %d, session sum %d", got, want)
	}
	if got, want := v("xixa_txn_retries_total"), uint64(retries); got != want {
		t.Errorf("retries counter %d, session sum %d", got, want)
	}
	if got, want := v("xixa_txn_backoff_nanoseconds_total"), uint64(backoffNs); got != want {
		t.Errorf("backoff counter %d ns, session sum %d ns", got, want)
	}

	ts := srv.TxnStats()
	if got := v("xixa_txn_commits_total"); got != ts.Commits {
		t.Errorf("commits counter %d, TxnStats %d", got, ts.Commits)
	}
	if got := v("xixa_txn_aborts_total"); got != ts.Aborts {
		t.Errorf("aborts counter %d, TxnStats %d", got, ts.Aborts)
	}
	if got := v("xixa_txn_conflicts_total"); got != ts.Conflicts {
		t.Errorf("conflicts counter %d, TxnStats %d", got, ts.Conflicts)
	}
	if ts.Commits == 0 {
		t.Error("no commits recorded; the hammer did nothing")
	}
	if got := v("xixa_sessions_opened_total"); got != nSess {
		t.Errorf("sessions opened %d, want %d", got, nSess)
	}
	if got := vals["xixa_statement_seconds_count"]; uint64(got) != uint64(executed+errs) {
		t.Errorf("latency histogram count %v, want %d (every admitted statement observes)", got, executed+errs)
	}
}

// TestServerObservabilityEndToEnd drives a server with sampling at 1
// (every statement traced) and checks the whole chain: the HTTP
// /metrics text carries the statement counters, and /trace/last
// returns a trace whose spans include the executed phases with
// plan-node cardinalities attached once an index exists.
func TestServerObservabilityEndToEnd(t *testing.T) {
	srv := New(fixtureDB(30), Config{})
	defer srv.Close()
	srv.SetTraceSampleEvery(1)
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for i := 0; i < 5; i++ {
		if _, err := sess.Execute(pointQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Execute(`insert into SECURITY value <Security><Symbol>E2E</Symbol><Yield>2.5</Yield></Security>`); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(obs.NewMux(srv.Metrics(), srv.Tracer()))
	defer hs.Close()

	get := func(path string) string {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"xixa_statements_total 6",
		"xixa_txn_commits_total 1",
		"xixa_statement_seconds_count 6",
		"go_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	traces := get("/trace/last?n=10")
	for _, want := range []string{`"name": "optimize"`, `"name": "xpath verify"`, `"name": "commit"`, `"statement"`} {
		if !strings.Contains(traces, want) {
			t.Errorf("/trace/last missing %q in:\n%s", want, traces)
		}
	}

	// Traced executions feed the capture ring's cardinality aggregates.
	if stats := srv.Capture().CardStats(); len(stats) == 0 {
		t.Error("no cardinality observations reached the capture ring")
	}
}
