package server

// Transaction management: every mutating statement runs as a
// snapshot-isolated transaction (engine.Txn over the storage layer's
// MVCC version chains), and sessions can open explicit multi-statement
// transactions with Begin. Commits validate first-writer-wins; the
// losing transaction aborts without side effects and — for the
// single-statement auto-commit path — retries on a fresh snapshot.
//
// Durability composes with MVCC here: commitTxn threads txnPrepare
// into engine.Txn.Commit as the storage layer's prepare hook. The hook
// encodes the write set into WAL payloads before the commit stamp
// exists (document encoding is the expensive part), and the returned
// append closure receives the stamp, patches it into the payloads
// (wal.PatchStamp), and appends the batch while the commit holds its
// tables' commit locks. Commits on disjoint tables append
// concurrently, so log order and stamp order may differ; every
// bare/commit record carries its stamp and replay (server.Applier)
// reorders frames back into stamp order — a serial replay of the log
// in stamp order reproduces the concurrent execution bit for bit.
// Multi-operation transactions are framed with txn-begin/txn-commit
// records (wal.AppendTxn keeps the batch contiguous); recovery applies
// a frame atomically and discards unterminated frames.
// Single-operation transactions skip the framing: a bare document
// record is self-framing, and the WAL's CRC tail-scan already drops a
// torn final record.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xixa/internal/engine"
	"xixa/internal/obs"
	"xixa/internal/storage"
	"xixa/internal/wal"
	"xixa/internal/xindex"
	"xixa/internal/xquery"
)

// maxConflictRetries bounds automatic first-writer-wins retries of a
// single-statement transaction before the conflict surfaces to the
// client. Between retries the statement sleeps a full-jitter
// exponential backoff (uniform over (0, base<<attempt], capped):
// immediate retries under high contention re-collide in lockstep —
// eight writers on one hot document all re-validate, all lose but one,
// and all re-run together, burning CPU that the winner needs to get
// off the document — while the randomized, growing pause spreads the
// losers out so each round crowns a winner quickly.
const (
	maxConflictRetries  = 8
	conflictBackoffBase = 50 * time.Microsecond
	conflictBackoffMax  = 5 * time.Millisecond
)

// sleepConflictBackoff pauses before conflict retry number attempt+1,
// returning the time actually slept (sessions account cumulative
// backoff).
func sleepConflictBackoff(attempt int) time.Duration {
	ceil := conflictBackoffBase << uint(attempt)
	if ceil > conflictBackoffMax {
		ceil = conflictBackoffMax
	}
	d := time.Duration(rand.Int63n(int64(ceil))) + 1
	time.Sleep(d)
	return d
}

// ErrTxnFinished reports Execute/Commit on an already-finished
// explicit transaction.
var ErrTxnFinished = errors.New("server: transaction already finished")

// TxnStats are the server-lifetime transaction counters, including the
// commit pipeline's stamp-allocator, publish, and replay reorder
// counters.
type TxnStats struct {
	// Commits counts successfully committed mutation transactions.
	Commits uint64
	// Aborts counts transactions that finished without committing:
	// execution errors, commit failures, and explicit rollbacks.
	Aborts uint64
	// Conflicts counts first-writer-wins validation failures; each
	// automatic retry that loses again counts separately.
	Conflicts uint64
	// StampsAllocated is the total number of commit stamps handed out
	// by the storage layer's atomic allocator.
	StampsAllocated uint64
	// Watermark is the highest commit stamp with every predecessor
	// published (the stamp a new snapshot reads at).
	Watermark uint64
	// PublishLag is the number of commits currently published above the
	// watermark (finished while a lower stamp was still applying);
	// PublishLagPeak is its lifetime maximum.
	PublishLag     uint64
	PublishLagPeak uint64
	// PublishWait is the cumulative time commits spent between stamp
	// allocation and publish completion (WAL append + apply + watermark
	// bookkeeping).
	PublishWait time.Duration
	// ReorderBuffered counts replay frames (recovery on this server)
	// that arrived ahead of a stamp gap and had to wait in the
	// applier's reorder buffer; ReorderPeak is the largest number
	// buffered at once.
	ReorderBuffered uint64
	ReorderPeak     uint64
}

// TxnStats returns the server's transaction counters, read from the
// same registry handles the commit path updates — TxnStats, \stats, and
// /metrics can never disagree.
func (s *Server) TxnStats() TxnStats {
	mv := s.db.MVCCStats()
	return TxnStats{
		Commits:         s.met.commits.Value(),
		Aborts:          s.met.aborts.Value(),
		Conflicts:       s.met.conflicts.Value(),
		StampsAllocated: mv.StampsAllocated,
		Watermark:       mv.Watermark,
		PublishLag:      mv.PublishLag,
		PublishLagPeak:  mv.PublishLagPeak,
		PublishWait:     time.Duration(mv.PublishWaitNs),
		ReorderBuffered: s.reorderBuffered.Load(),
		ReorderPeak:     s.reorderPeak.Load(),
	}
}

// encodeTxnOp builds the WAL payload for one buffered write. The
// commit stamp is not yet known — it is encoded as 0 and patched in by
// the append closure once allocated.
func encodeTxnOp(op storage.TxOp) ([]byte, error) {
	switch op.Kind {
	case storage.TxInsert:
		return wal.EncodeDocInsert(op.Table, op.Doc, 0)
	case storage.TxReplace:
		return wal.EncodeDocReplace(op.Table, op.Doc, 0)
	case storage.TxDelete:
		return wal.EncodeDocRemove(op.Table, op.DocID, 0), nil
	}
	return nil, fmt.Errorf("server: unknown tx op kind %d", op.Kind)
}

// txnPrepare is the storage prepare hook: called after commit
// validation with document IDs assigned, before the write set
// publishes. Encoding happens here, before the commit stamp exists;
// the returned closure patches the allocated stamp into every payload
// and appends the finished batch (under the commit's table locks, so
// same-table records stay log-ordered by stamp).
func (s *Server) txnPrepare(ops []storage.TxOp) (func(stamp uint64) (uint64, error), error) {
	// The last line of defense for replica/fencing enforcement: no
	// write set may reach the log of a read-only or fenced server, even
	// through a path that skipped the statement-level check.
	if err := s.writable(); err != nil {
		return nil, err
	}
	payloads := make([][]byte, 0, len(ops)+2)
	if len(ops) > 1 {
		id := s.txnSeq.Add(1)
		payloads = append(payloads, wal.EncodeTxnBegin(id))
		for _, op := range ops {
			p, err := encodeTxnOp(op)
			if err != nil {
				return nil, err
			}
			payloads = append(payloads, p)
		}
		payloads = append(payloads, wal.EncodeTxnCommit(id, 0))
	} else {
		p, err := encodeTxnOp(ops[0])
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, p)
	}
	return func(stamp uint64) (uint64, error) {
		for _, p := range payloads {
			wal.PatchStamp(p, stamp)
		}
		return s.wal.AppendTxn(payloads)
	}, nil
}

// commitTxn commits an engine transaction under the commit gate and,
// when durable, waits out the group fsync. It maintains the
// transaction counters; callers only add retry logic.
func (s *Server) commitTxn(tx *engine.Txn) (engine.CommitInfo, error) {
	var prep func([]storage.TxOp) (func(uint64) (uint64, error), error)
	if s.wal != nil {
		prep = s.txnPrepare
	}
	s.commitGate.RLock()
	info, err := tx.Commit(prep)
	s.commitGate.RUnlock()
	if err != nil {
		s.met.aborts.Inc()
		if errors.Is(err, storage.ErrConflict) {
			s.met.conflicts.Inc()
		}
		return info, err
	}
	s.met.commits.Inc()
	// The fsync wait happens outside the gate: writers behind this one
	// append their records meanwhile and ride the same group commit.
	if s.wal != nil && info.LogLSN > 0 {
		if cerr := s.wal.Commit(info.LogLSN); cerr != nil {
			return info, fmt.Errorf("server: wal commit: %w", cerr)
		}
	}
	return info, nil
}

// executeTxn runs one mutating statement as an auto-commit
// transaction, retrying on first-writer-wins conflicts with a fresh
// snapshot each time. When sess is non-nil, conflict retries and the
// backoff time slept between them are charged to the session's
// cumulative counters; the registry's retry/backoff counters always
// accumulate the identical values, so the two stay in exact agreement.
// A retried statement's trace (qt non-nil) accumulates one set of
// phase spans per attempt.
func (s *Server) executeTxn(stmt *xquery.Statement, sess *Session, qt *obs.QueryTrace) ([]xindex.Ref, engine.Stats, error) {
	for attempt := 0; ; attempt++ {
		tx := s.eng.Begin()
		refs, st, err := tx.ExecuteTraced(stmt, qt)
		if err != nil {
			tx.Rollback()
			s.met.aborts.Inc()
			return nil, st, err
		}
		var commitStart time.Time
		if qt != nil {
			commitStart = time.Now()
		}
		info, cerr := s.commitTxn(tx)
		if qt != nil {
			qt.Span("commit", time.Since(commitStart), 0)
		}
		if cerr == nil {
			st.Add(engine.Stats{IndexEntriesTouched: info.Maintenance.IndexEntriesTouched})
			return refs, st, nil
		}
		if errors.Is(cerr, storage.ErrConflict) && attempt < maxConflictRetries {
			slept := sleepConflictBackoff(attempt)
			s.met.retries.Inc()
			s.met.backoffNs.Add(uint64(slept.Nanoseconds()))
			if sess != nil {
				sess.mu.Lock()
				sess.retries++
				sess.backoff += slept
				sess.mu.Unlock()
			}
			continue
		}
		return nil, st, cerr
	}
}

// Txn is an explicit multi-statement transaction opened by
// Session.Begin: every statement sees the snapshot taken at Begin plus
// this transaction's own writes, and nothing is visible to others
// until Commit. Unlike the auto-commit path, a first-writer-wins
// conflict at Commit is returned to the client (storage.ErrConflict)
// instead of retried — the server cannot re-run client logic.
// A Txn is not safe for concurrent use by multiple goroutines.
type Txn struct {
	sess *Session
	tx   *engine.Txn
	done bool
}

// Begin opens an explicit transaction pinned to the current database
// snapshot and index configuration.
func (sess *Session) Begin() (*Txn, error) {
	if sess.srv.closed.Load() {
		return nil, ErrClosed
	}
	return &Txn{sess: sess, tx: sess.srv.eng.Begin()}, nil
}

// Execute parses and executes one statement inside the transaction
// under the server's admission control. Mutations buffer in the
// transaction; queries see the snapshot plus the buffered writes.
func (t *Txn) Execute(raw string) (*Result, error) {
	stmt, err := xquery.Parse(raw)
	if err != nil {
		return nil, err
	}
	if t.done {
		return nil, ErrTxnFinished
	}
	s := t.sess.srv
	if s.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case s.admit <- struct{}{}:
	default:
		return nil, ErrOverloaded
	}
	defer func() { <-s.admit }()
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	wg := s.flight.enter()
	defer wg.Done()

	if stmt.Kind != xquery.Query {
		if werr := s.writable(); werr != nil {
			return nil, werr
		}
	}
	refs, st, err := t.tx.Execute(stmt)
	t.sess.mu.Lock()
	if err != nil {
		t.sess.errors++
	} else {
		t.sess.stats.Add(st)
		t.sess.executed++
	}
	t.sess.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.capture.Observe(stmt, 1)
	return &Result{Refs: refs, Stats: st}, nil
}

// Commit publishes the transaction atomically. On storage.ErrConflict
// nothing was applied; the client may re-run the transaction.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnFinished
	}
	t.done = true
	_, err := t.sess.srv.commitTxn(t.tx)
	return err
}

// Rollback abandons the transaction. Rolling back a finished
// transaction is a no-op.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.tx.Rollback()
	t.sess.srv.met.aborts.Inc()
}
